//! Baseline clients: one node, three protocols.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use wv_net::{Node, NodeCtx, SiteId};
use wv_sim::{SimDuration, SimTime};
use wv_storage::Version;

use crate::msg::{BMsg, BReq};

/// Which classical scheme the client speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Read any single replica; write all replicas.
    Rowa,
    /// All writes (and strong reads) go to one primary site.
    Primary {
        /// The distinguished replica.
        primary: SiteId,
        /// If true, reads go to the cheapest replica and may be stale.
        local_reads: bool,
    },
    /// Thomas' majority consensus: majority read and majority write with
    /// timestamps.
    Majority,
}

/// What kind of baseline operation ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineOpKind {
    /// Read.
    Read,
    /// Write.
    Write,
}

/// A finished baseline operation.
#[derive(Clone, Debug)]
pub struct BaselineOp {
    /// Attempt id.
    pub req: BReq,
    /// Read or write.
    pub kind: BaselineOpKind,
    /// `Ok((version, value))` or unavailable. Reads carry the value.
    pub outcome: Result<(Version, Option<Bytes>), ()>,
    /// Start instant.
    pub started: SimTime,
    /// Finish instant.
    pub finished: SimTime,
}

impl BaselineOp {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

#[derive(Clone, Debug)]
enum BPhase {
    /// ROWA / primary-copy read: waiting for one ReadResp, failing over
    /// down the candidate list on timeout.
    SingleRead { candidates: Vec<SiteId>, idx: usize },
    /// Majority read: collecting `(version, value)` answers.
    MajorityRead {
        answers: BTreeMap<SiteId, (Version, Bytes)>,
    },
    /// ROWA write: waiting for WriteAcks from every replica.
    AllWrite {
        acked: Vec<SiteId>,
        version: Version,
    },
    /// Primary write: waiting for the primary's ack.
    PrimaryWrite,
    /// Majority write phase 1: learn the max timestamp.
    MajorityReadTs { answers: BTreeMap<SiteId, Version> },
    /// Majority write phase 2: collecting install acks.
    MajorityInstall {
        acked: Vec<SiteId>,
        version: Version,
    },
}

#[derive(Clone, Debug)]
struct BOp {
    kind: BaselineOpKind,
    payload: Option<Bytes>,
    started: SimTime,
    phase: BPhase,
    seq: u64,
}

/// A client speaking one baseline scheme against a set of replicas.
pub struct BaselineClient {
    site: SiteId,
    scheme: Scheme,
    replicas: Vec<SiteId>,
    costs: Vec<f64>,
    timeout: SimDuration,
    next_req: u64,
    ops: HashMap<BReq, BOp>,
    timers: HashMap<u64, (BReq, u64)>,
    next_timer: u64,
    /// Finished operations, in completion order.
    pub completed: Vec<BaselineOp>,
}

impl BaselineClient {
    /// Creates a client at `site` talking to `replicas`, with per-site
    /// costs for cheapest-first choices.
    pub fn new(
        site: SiteId,
        scheme: Scheme,
        replicas: Vec<SiteId>,
        costs: Vec<f64>,
        timeout: SimDuration,
    ) -> Self {
        assert!(!replicas.is_empty(), "a scheme needs replicas");
        BaselineClient {
            site,
            scheme,
            replicas,
            costs,
            timeout,
            next_req: 1,
            ops: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 1,
            completed: Vec::new(),
        }
    }

    /// The scheme spoken.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The client's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Drains the finished-operation log.
    pub fn take_completed(&mut self) -> Vec<BaselineOp> {
        std::mem::take(&mut self.completed)
    }

    /// Operations still in flight.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Votes needed for a majority of this client's replica set.
    pub fn majority(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// Replicas sorted cheapest-first.
    fn by_cost(&self) -> Vec<SiteId> {
        let mut v = self.replicas.clone();
        v.sort_by(|a, b| {
            let ca = self.costs.get(a.index()).copied().unwrap_or(f64::MAX);
            let cb = self.costs.get(b.index()).copied().unwrap_or(f64::MAX);
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        v
    }

    fn fresh(&mut self) -> BReq {
        let r = BReq(self.next_req);
        self.next_req += 1;
        r
    }

    fn arm(&mut self, req: BReq, seq: u64, ctx: &mut NodeCtx<'_, BMsg>) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, (req, seq));
        ctx.set_timer(self.timeout, token);
    }

    /// Starts a read; returns its id.
    pub fn start_read(&mut self, ctx: &mut NodeCtx<'_, BMsg>) -> BReq {
        let req = self.fresh();
        let phase = match self.scheme {
            Scheme::Rowa => {
                let candidates = self.by_cost();
                ctx.send(candidates[0], BMsg::ReadReq { req });
                BPhase::SingleRead { candidates, idx: 0 }
            }
            Scheme::Primary {
                primary,
                local_reads,
            } => {
                // Strong reads must see the write order, so only the
                // primary qualifies; local reads may fail over freely.
                let candidates = if local_reads {
                    self.by_cost()
                } else {
                    vec![primary]
                };
                ctx.send(candidates[0], BMsg::ReadReq { req });
                BPhase::SingleRead { candidates, idx: 0 }
            }
            Scheme::Majority => {
                for &r in &self.replicas {
                    ctx.send(r, BMsg::ReadReq { req });
                }
                BPhase::MajorityRead {
                    answers: BTreeMap::new(),
                }
            }
        };
        self.ops.insert(
            req,
            BOp {
                kind: BaselineOpKind::Read,
                payload: None,
                started: ctx.now(),
                phase,
                seq: 1,
            },
        );
        self.arm(req, 1, ctx);
        req
    }

    /// Starts a write; returns its id.
    pub fn start_write(&mut self, value: impl Into<Bytes>, ctx: &mut NodeCtx<'_, BMsg>) -> BReq {
        let req = self.fresh();
        let value = value.into();
        let phase = match self.scheme {
            Scheme::Rowa => {
                for &r in &self.replicas {
                    ctx.send(
                        r,
                        BMsg::WriteReq {
                            req,
                            value: value.clone(),
                        },
                    );
                }
                BPhase::AllWrite {
                    acked: Vec::new(),
                    version: Version::INITIAL,
                }
            }
            Scheme::Primary { primary, .. } => {
                ctx.send(
                    primary,
                    BMsg::WriteReq {
                        req,
                        value: value.clone(),
                    },
                );
                BPhase::PrimaryWrite
            }
            Scheme::Majority => {
                // Phase 1: learn the highest timestamp from a majority.
                for &r in &self.replicas {
                    ctx.send(r, BMsg::ReadReq { req });
                }
                BPhase::MajorityReadTs {
                    answers: BTreeMap::new(),
                }
            }
        };
        self.ops.insert(
            req,
            BOp {
                kind: BaselineOpKind::Write,
                payload: Some(value),
                started: ctx.now(),
                phase,
                seq: 1,
            },
        );
        self.arm(req, 1, ctx);
        req
    }

    fn finish(&mut self, req: BReq, outcome: Result<(Version, Option<Bytes>), ()>, now: SimTime) {
        if let Some(op) = self.ops.remove(&req) {
            self.completed.push(BaselineOp {
                req,
                kind: op.kind,
                outcome,
                started: op.started,
                finished: now,
            });
        }
    }
}

impl Node for BaselineClient {
    type Msg = BMsg;

    fn on_message(&mut self, from: SiteId, msg: BMsg, ctx: &mut NodeCtx<'_, BMsg>) {
        enum Done {
            No,
            Finish(Result<(Version, Option<Bytes>), ()>),
            MajorityInstall(Version, Bytes),
        }
        let (req, done) = match msg {
            BMsg::ReadResp {
                req,
                version,
                value,
            } => {
                let Some(op) = self.ops.get_mut(&req) else {
                    return;
                };
                match &mut op.phase {
                    BPhase::SingleRead { .. } => (req, Done::Finish(Ok((version, Some(value))))),
                    BPhase::MajorityRead { answers } => {
                        answers.insert(from, (version, value));
                        if answers.len() > self.replicas.len() / 2 {
                            let (v, val) = answers
                                .values()
                                .max_by_key(|(v, _)| *v)
                                .cloned()
                                .expect("non-empty");
                            (req, Done::Finish(Ok((v, Some(val)))))
                        } else {
                            (req, Done::No)
                        }
                    }
                    BPhase::MajorityReadTs { answers } => {
                        answers.insert(from, version);
                        if answers.len() > self.replicas.len() / 2 {
                            let max = answers.values().copied().max().expect("non-empty");
                            let value = op.payload.clone().expect("write payload");
                            (req, Done::MajorityInstall(max.next(), value))
                        } else {
                            (req, Done::No)
                        }
                    }
                    _ => (req, Done::No),
                }
            }
            BMsg::WriteAck { req, version } => {
                let Some(op) = self.ops.get_mut(&req) else {
                    return;
                };
                match &mut op.phase {
                    BPhase::PrimaryWrite => (req, Done::Finish(Ok((version, None)))),
                    BPhase::AllWrite { acked, version: v } => {
                        if !acked.contains(&from) {
                            acked.push(from);
                            *v = (*v).max(version);
                        }
                        if acked.len() == self.replicas.len() {
                            let v = *v;
                            (req, Done::Finish(Ok((v, None))))
                        } else {
                            (req, Done::No)
                        }
                    }
                    _ => (req, Done::No),
                }
            }
            BMsg::InstallAck { req, version: _ } => {
                let Some(op) = self.ops.get_mut(&req) else {
                    return;
                };
                match &mut op.phase {
                    BPhase::MajorityInstall { acked, version: v } => {
                        if !acked.contains(&from) {
                            acked.push(from);
                        }
                        if acked.len() > self.replicas.len() / 2 {
                            let v = *v;
                            (req, Done::Finish(Ok((v, None))))
                        } else {
                            (req, Done::No)
                        }
                    }
                    _ => (req, Done::No),
                }
            }
            // Requests mis-delivered to a client: ignore.
            _ => return,
        };
        match done {
            Done::No => {}
            Done::Finish(outcome) => {
                let now = ctx.now();
                self.finish(req, outcome, now);
            }
            Done::MajorityInstall(version, value) => {
                let op = self.ops.get_mut(&req).expect("op live");
                op.seq += 1;
                op.phase = BPhase::MajorityInstall {
                    acked: Vec::new(),
                    version,
                };
                let seq = op.seq;
                for &r in &self.replicas.clone() {
                    ctx.send(
                        r,
                        BMsg::Install {
                            req,
                            version,
                            value: value.clone(),
                        },
                    );
                }
                self.arm(req, seq, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, BMsg>) {
        let Some((req, seq)) = self.timers.remove(&token) else {
            return;
        };
        if self.ops.get(&req).map(|op| op.seq) != Some(seq) {
            return;
        }
        // Single-target reads fail over to the next candidate before
        // giving up; everything else times out terminally.
        let failover = {
            let op = self.ops.get_mut(&req).expect("checked above");
            match &mut op.phase {
                BPhase::SingleRead { candidates, idx } if *idx + 1 < candidates.len() => {
                    *idx += 1;
                    op.seq += 1;
                    Some((candidates[*idx], op.seq))
                }
                _ => None,
            }
        };
        match failover {
            Some((target, seq)) => {
                ctx.send(target, BMsg::ReadReq { req });
                self.arm(req, seq, ctx);
            }
            None => {
                let now = ctx.now();
                self.finish(req, Err(()), now);
            }
        }
    }

    fn on_crash(&mut self) {
        self.ops.clear();
        self.timers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_sim::DetRng;

    fn reps() -> Vec<SiteId> {
        vec![SiteId(0), SiteId(1), SiteId(2)]
    }

    fn costs() -> Vec<f64> {
        vec![30.0, 10.0, 20.0, 1.0]
    }

    fn effects(ctx: &mut NodeCtx<'_, BMsg>) -> Vec<(SiteId, BMsg)> {
        ctx.take_effects()
            .into_iter()
            .filter_map(|e| match e {
                wv_net::node::Effect::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn rowa_read_targets_cheapest_single_replica() {
        let mut c = BaselineClient::new(
            SiteId(3),
            Scheme::Rowa,
            reps(),
            costs(),
            SimDuration::from_secs(1),
        );
        let mut rng = DetRng::new(1);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(3), &mut rng);
        let req = c.start_read(&mut ctx);
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(1), "site 1 is cheapest");
        let mut ctx = NodeCtx::new(SimTime::from_millis(10), SiteId(3), &mut rng);
        c.on_message(
            SiteId(1),
            BMsg::ReadResp {
                req,
                version: Version(2),
                value: Bytes::from_static(b"v"),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 1);
        assert!(c.completed[0].outcome.is_ok());
    }

    #[test]
    fn rowa_write_needs_every_replica() {
        let mut c = BaselineClient::new(
            SiteId(3),
            Scheme::Rowa,
            reps(),
            costs(),
            SimDuration::from_secs(1),
        );
        let mut rng = DetRng::new(2);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(3), &mut rng);
        let req = c.start_write(&b"w"[..], &mut ctx);
        assert_eq!(effects(&mut ctx).len(), 3);
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), SiteId(3), &mut rng);
            c.on_message(
                SiteId(s),
                BMsg::WriteAck {
                    req,
                    version: Version(1),
                },
                &mut ctx,
            );
            assert_eq!(c.completed.len(), 0, "two of three acks is not enough");
        }
        let mut ctx = NodeCtx::new(SimTime::from_millis(6), SiteId(3), &mut rng);
        c.on_message(
            SiteId(2),
            BMsg::WriteAck {
                req,
                version: Version(1),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 1);
        assert!(c.completed[0].outcome.is_ok());
    }

    #[test]
    fn rowa_write_times_out_without_full_acks() {
        let mut c = BaselineClient::new(
            SiteId(3),
            Scheme::Rowa,
            reps(),
            costs(),
            SimDuration::from_millis(100),
        );
        let mut rng = DetRng::new(3);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(3), &mut rng);
        let req = c.start_write(&b"w"[..], &mut ctx);
        let _ = effects(&mut ctx);
        let mut ctx = NodeCtx::new(SimTime::from_millis(5), SiteId(3), &mut rng);
        c.on_message(
            SiteId(0),
            BMsg::WriteAck {
                req,
                version: Version(1),
            },
            &mut ctx,
        );
        // The timer fires.
        let mut ctx = NodeCtx::new(SimTime::from_millis(100), SiteId(3), &mut rng);
        c.on_timer(1, &mut ctx);
        assert_eq!(c.completed.len(), 1);
        assert!(c.completed[0].outcome.is_err());
    }

    #[test]
    fn primary_write_waits_only_for_primary() {
        let mut c = BaselineClient::new(
            SiteId(3),
            Scheme::Primary {
                primary: SiteId(0),
                local_reads: false,
            },
            reps(),
            costs(),
            SimDuration::from_secs(1),
        );
        let mut rng = DetRng::new(4);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(3), &mut rng);
        let req = c.start_write(&b"p"[..], &mut ctx);
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(0));
        let mut ctx = NodeCtx::new(SimTime::from_millis(5), SiteId(3), &mut rng);
        c.on_message(
            SiteId(0),
            BMsg::WriteAck {
                req,
                version: Version(1),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 1);
    }

    #[test]
    fn primary_local_reads_go_to_cheapest() {
        let mut c = BaselineClient::new(
            SiteId(3),
            Scheme::Primary {
                primary: SiteId(0),
                local_reads: true,
            },
            reps(),
            costs(),
            SimDuration::from_secs(1),
        );
        let mut rng = DetRng::new(5);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(3), &mut rng);
        c.start_read(&mut ctx);
        let out = effects(&mut ctx);
        assert_eq!(out[0].0, SiteId(1), "cheapest replica, not the primary");
    }

    #[test]
    fn majority_read_takes_highest_timestamp_of_majority() {
        let mut c = BaselineClient::new(
            SiteId(3),
            Scheme::Majority,
            reps(),
            costs(),
            SimDuration::from_secs(1),
        );
        let mut rng = DetRng::new(6);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(3), &mut rng);
        let req = c.start_read(&mut ctx);
        assert_eq!(effects(&mut ctx).len(), 3);
        let mut ctx = NodeCtx::new(SimTime::from_millis(5), SiteId(3), &mut rng);
        c.on_message(
            SiteId(0),
            BMsg::ReadResp {
                req,
                version: Version(1),
                value: Bytes::from_static(b"old"),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 0);
        let mut ctx = NodeCtx::new(SimTime::from_millis(6), SiteId(3), &mut rng);
        c.on_message(
            SiteId(2),
            BMsg::ReadResp {
                req,
                version: Version(4),
                value: Bytes::from_static(b"new"),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 1);
        let (v, val) = c.completed[0].outcome.clone().expect("ok");
        assert_eq!(v, Version(4));
        assert_eq!(val.expect("value"), Bytes::from_static(b"new"));
    }

    #[test]
    fn majority_write_reads_timestamps_then_installs() {
        let mut c = BaselineClient::new(
            SiteId(3),
            Scheme::Majority,
            reps(),
            costs(),
            SimDuration::from_secs(1),
        );
        let mut rng = DetRng::new(7);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(3), &mut rng);
        let req = c.start_write(&b"m"[..], &mut ctx);
        assert_eq!(effects(&mut ctx).len(), 3, "timestamp reads fan out");
        // Two timestamp answers reach majority; install fans out at ts+1.
        for (s, v) in [(0u16, 2u64), (1, 5)] {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), SiteId(3), &mut rng);
            c.on_message(
                SiteId(s),
                BMsg::ReadResp {
                    req,
                    version: Version(v),
                    value: Bytes::new(),
                },
                &mut ctx,
            );
            let out = effects(&mut ctx);
            if s == 1 {
                assert_eq!(out.len(), 3);
                assert!(out.iter().all(|(_, m)| matches!(
                    m,
                    BMsg::Install { version, .. } if *version == Version(6)
                )));
            }
        }
        // Majority of install acks completes the write.
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(9), SiteId(3), &mut rng);
            c.on_message(
                SiteId(s),
                BMsg::InstallAck {
                    req,
                    version: Version(6),
                },
                &mut ctx,
            );
        }
        assert_eq!(c.completed.len(), 1);
        let (v, _) = c.completed[0].outcome.clone().expect("ok");
        assert_eq!(v, Version(6));
    }

    #[test]
    fn majority_helper() {
        let c = BaselineClient::new(
            SiteId(3),
            Scheme::Majority,
            vec![SiteId(0), SiteId(1), SiteId(2), SiteId(4), SiteId(5)],
            costs(),
            SimDuration::from_secs(1),
        );
        assert_eq!(c.majority(), 3);
    }
}
