//! The baseline replica server.

use std::collections::HashMap;

use bytes::Bytes;
use wv_net::{Node, NodeCtx, SiteId};
use wv_storage::Version;

use crate::msg::{BMsg, BReq};

/// A replica for the baseline schemes: a versioned value plus, for the
/// primary-copy scheme, a propagation list.
pub struct BaselineServer {
    site: SiteId,
    version: Version,
    value: Bytes,
    /// Backups to push updates to after locally ordering a `WriteReq`
    /// (non-empty only on a primary-copy primary).
    propagate_to: Vec<SiteId>,
    /// Requests seen, for idempotence of installs.
    applied: HashMap<BReq, Version>,
    /// Counters.
    pub reads: u64,
    /// Counters.
    pub installs: u64,
    /// Counters.
    pub ordered_writes: u64,
}

impl BaselineServer {
    /// A replica with no propagation duties (ROWA, majority, backup).
    pub fn new(site: SiteId) -> Self {
        BaselineServer {
            site,
            version: Version::INITIAL,
            value: Bytes::new(),
            propagate_to: Vec::new(),
            applied: HashMap::new(),
            reads: 0,
            installs: 0,
            ordered_writes: 0,
        }
    }

    /// A primary that pushes ordered writes to `backups`.
    pub fn primary(site: SiteId, backups: Vec<SiteId>) -> Self {
        BaselineServer {
            propagate_to: backups,
            ..BaselineServer::new(site)
        }
    }

    /// The replica's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Current version (or Thomas timestamp).
    pub fn version(&self) -> Version {
        self.version
    }

    /// Current value.
    pub fn value(&self) -> Bytes {
        self.value.clone()
    }

    fn install(&mut self, version: Version, value: Bytes) -> bool {
        // Thomas write rule: only newer timestamps take effect.
        if version > self.version {
            self.version = version;
            self.value = value;
            self.installs += 1;
            true
        } else {
            false
        }
    }
}

impl Node for BaselineServer {
    type Msg = BMsg;

    fn on_message(&mut self, from: SiteId, msg: BMsg, ctx: &mut NodeCtx<'_, BMsg>) {
        match msg {
            BMsg::ReadReq { req } => {
                self.reads += 1;
                ctx.send(
                    from,
                    BMsg::ReadResp {
                        req,
                        version: self.version,
                        value: self.value.clone(),
                    },
                );
            }
            BMsg::Install {
                req,
                version,
                value,
            } => {
                self.install(version, value);
                ctx.send(
                    from,
                    BMsg::InstallAck {
                        req,
                        version: self.version,
                    },
                );
            }
            BMsg::WriteReq { req, value } => {
                // Idempotence: a duplicated WriteReq must not double-bump
                // the version.
                let version = if let Some(v) = self.applied.get(&req) {
                    *v
                } else {
                    let v = self.version.next();
                    self.install(v, value.clone());
                    self.applied.insert(req, v);
                    self.ordered_writes += 1;
                    // Primary-copy propagation is asynchronous: the ack
                    // does not wait for the backups.
                    for backup in self.propagate_to.clone() {
                        ctx.send(
                            backup,
                            BMsg::Install {
                                req,
                                version: v,
                                value: value.clone(),
                            },
                        );
                    }
                    v
                };
                ctx.send(from, BMsg::WriteAck { req, version });
            }
            // Responses mis-delivered to a server (or backup acks for
            // asynchronous propagation) need no action.
            BMsg::ReadResp { .. } | BMsg::InstallAck { .. } | BMsg::WriteAck { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_sim::{DetRng, SimTime};

    fn effects(ctx: &mut NodeCtx<'_, BMsg>) -> Vec<(SiteId, BMsg)> {
        ctx.take_effects()
            .into_iter()
            .filter_map(|e| match e {
                wv_net::node::Effect::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn read_returns_versioned_value() {
        let mut s = BaselineServer::new(SiteId(0));
        let mut rng = DetRng::new(1);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(0), &mut rng);
        s.on_message(SiteId(9), BMsg::ReadReq { req: BReq(1) }, &mut ctx);
        let out = effects(&mut ctx);
        assert!(matches!(
            &out[0].1,
            BMsg::ReadResp { version, .. } if *version == Version(0)
        ));
    }

    #[test]
    fn install_follows_thomas_write_rule() {
        let mut s = BaselineServer::new(SiteId(0));
        let mut rng = DetRng::new(2);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(0), &mut rng);
        s.on_message(
            SiteId(9),
            BMsg::Install {
                req: BReq(1),
                version: Version(5),
                value: Bytes::from_static(b"five"),
            },
            &mut ctx,
        );
        assert_eq!(s.version(), Version(5));
        // An older install is ignored but still acked with the newer state.
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(0), &mut rng);
        s.on_message(
            SiteId(9),
            BMsg::Install {
                req: BReq(2),
                version: Version(3),
                value: Bytes::from_static(b"three"),
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert_eq!(s.value(), Bytes::from_static(b"five"));
        assert!(matches!(
            &out[0].1,
            BMsg::InstallAck { version, .. } if *version == Version(5)
        ));
    }

    #[test]
    fn write_req_assigns_versions_and_is_idempotent() {
        let mut s = BaselineServer::new(SiteId(0));
        let mut rng = DetRng::new(3);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(0), &mut rng);
        s.on_message(
            SiteId(9),
            BMsg::WriteReq {
                req: BReq(1),
                value: Bytes::from_static(b"a"),
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert!(matches!(
            &out[0].1,
            BMsg::WriteAck { version, .. } if *version == Version(1)
        ));
        // Duplicate write: same version back, no double bump.
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(0), &mut rng);
        s.on_message(
            SiteId(9),
            BMsg::WriteReq {
                req: BReq(1),
                value: Bytes::from_static(b"a"),
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert!(matches!(
            &out[0].1,
            BMsg::WriteAck { version, .. } if *version == Version(1)
        ));
        assert_eq!(s.version(), Version(1));
        assert_eq!(s.ordered_writes, 1);
    }

    #[test]
    fn primary_propagates_to_backups() {
        let mut s = BaselineServer::primary(SiteId(0), vec![SiteId(1), SiteId(2)]);
        let mut rng = DetRng::new(4);
        let mut ctx = NodeCtx::new(SimTime::ZERO, SiteId(0), &mut rng);
        s.on_message(
            SiteId(9),
            BMsg::WriteReq {
                req: BReq(1),
                value: Bytes::from_static(b"p"),
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        let installs = out
            .iter()
            .filter(|(_, m)| matches!(m, BMsg::Install { .. }))
            .count();
        assert_eq!(installs, 2, "one propagation per backup");
        assert!(out
            .iter()
            .any(|(to, m)| *to == SiteId(9) && matches!(m, BMsg::WriteAck { .. })));
    }
}
