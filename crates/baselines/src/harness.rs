//! Synchronous facade over a simulated baseline cluster, mirroring
//! `wv_core::harness` so the comparison experiments drive all schemes
//! through the same motions.
//!
//! The same determinism contract applies: a harness replays the same
//! virtual-time history from the same inputs and seed on any OS thread,
//! which is what lets `wv-bench` build one per trial inside its parallel
//! trial engine.

use bytes::Bytes;
use wv_net::sim_net::{Cluster, NetStats};
use wv_net::{NetConfig, Node, NodeCtx, Partition, SiteId};
use wv_sim::{LatencyModel, Sim, SimDuration, SimTime};
use wv_storage::Version;

use crate::client::{BaselineClient, BaselineOp, Scheme};
use crate::msg::BMsg;
use crate::server::BaselineServer;

/// Server or client role per site.
enum BNode {
    Server(BaselineServer),
    Client(BaselineClient),
}

impl Node for BNode {
    type Msg = BMsg;

    fn on_message(&mut self, from: SiteId, msg: BMsg, ctx: &mut NodeCtx<'_, BMsg>) {
        match self {
            BNode::Server(s) => s.on_message(from, msg, ctx),
            BNode::Client(c) => c.on_message(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, BMsg>) {
        if let BNode::Client(c) = self {
            c.on_timer(token, ctx);
        }
    }

    fn on_crash(&mut self) {
        match self {
            BNode::Server(_) => {} // replica state is stable storage
            BNode::Client(c) => c.on_crash(),
        }
    }
}

/// A baseline cluster: `replicas` servers (sites `0..replicas`) plus one
/// client (the last site), with blocking-style operations.
pub struct BaselineHarness {
    sim: Sim<Cluster<BNode>>,
    client: SiteId,
    scheme: Scheme,
}

impl BaselineHarness {
    /// Builds a cluster for `scheme` with `replicas` replicas over `net`
    /// (which must cover `replicas + 1` sites; the extra one hosts the
    /// client). `timeout` bounds each operation.
    pub fn new(
        scheme: Scheme,
        replicas: usize,
        net: NetConfig,
        seed: u64,
        timeout: SimDuration,
    ) -> Self {
        assert_eq!(
            net.sites(),
            replicas + 1,
            "network must cover replicas plus one client site"
        );
        let client_site = SiteId::from(replicas);
        let replica_ids: Vec<SiteId> = SiteId::all(replicas).collect();
        let costs: Vec<f64> = (0..net.sites())
            .map(|j| net.mean_latency_ms(client_site, SiteId::from(j)))
            .collect();
        let mut nodes: Vec<BNode> = (0..replicas)
            .map(|i| {
                let site = SiteId::from(i);
                let server = match scheme {
                    Scheme::Primary { primary, .. } if primary == site => BaselineServer::primary(
                        site,
                        replica_ids.iter().copied().filter(|r| *r != site).collect(),
                    ),
                    _ => BaselineServer::new(site),
                };
                BNode::Server(server)
            })
            .collect();
        nodes.push(BNode::Client(BaselineClient::new(
            client_site,
            scheme,
            replica_ids,
            costs,
            timeout,
        )));
        BaselineHarness {
            sim: Cluster::sim(nodes, net, seed),
            client: client_site,
            scheme,
        }
    }

    /// Convenience constructor: uniform 100 ms links, 75 ms local access.
    pub fn uniform(scheme: Scheme, replicas: usize, seed: u64) -> Self {
        let sites = replicas + 1;
        let mut net = NetConfig::uniform(sites, LatencyModel::constant_millis(100));
        for s in SiteId::all(sites) {
            net.set_link(s, s, LatencyModel::constant_millis(75));
        }
        BaselineHarness::new(scheme, replicas, net, seed, SimDuration::from_secs(5))
    }

    /// The scheme under test.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Transport counters.
    pub fn net_stats(&self) -> NetStats {
        self.sim.world.stats
    }

    fn run_op(
        &mut self,
        start: impl FnOnce(&mut BaselineClient, &mut NodeCtx<'_, BMsg>) + 'static,
    ) -> Option<BaselineOp> {
        let client = self.client;
        let before = match &self.sim.world.nodes[client.index()] {
            BNode::Client(c) => c.completed.len(),
            BNode::Server(_) => unreachable!("client site hosts the client"),
        };
        let at = self.sim.now();
        Cluster::invoke(self.sim.scheduler(), at, client, move |node, ctx| {
            if let BNode::Client(c) = node {
                start(c, ctx);
            }
        });
        loop {
            let len = match &self.sim.world.nodes[client.index()] {
                BNode::Client(c) => c.completed.len(),
                BNode::Server(_) => unreachable!(),
            };
            if len > before {
                break;
            }
            if !self.sim.step() {
                return None;
            }
        }
        match &mut self.sim.world.nodes[client.index()] {
            BNode::Client(c) => Some(c.completed.remove(before)),
            BNode::Server(_) => unreachable!(),
        }
    }

    /// Reads; `Ok((version, value, latency))` or `Err(())` if blocked.
    ///
    /// # Errors
    ///
    /// The unit error means exactly one thing — the operation blocked —
    /// mirroring the paper's binary blocked/served outcome, so a richer
    /// error type would carry no information.
    #[allow(clippy::type_complexity, clippy::result_unit_err)]
    pub fn read(&mut self) -> Result<(Version, Bytes, SimDuration), ()> {
        let op = self.run_op(|c, ctx| {
            c.start_read(ctx);
        });
        match op {
            Some(op) => {
                let latency = op.latency();
                op.outcome
                    .map(|(v, val)| (v, val.unwrap_or_default(), latency))
            }
            None => Err(()),
        }
    }

    /// Writes; `Ok((version, latency))` or `Err(())` if blocked.
    ///
    /// # Errors
    ///
    /// As for [`BaselineHarness::read`]: blocked, nothing more to say.
    #[allow(clippy::result_unit_err)]
    pub fn write(&mut self, value: Vec<u8>) -> Result<(Version, SimDuration), ()> {
        let op = self.run_op(move |c, ctx| {
            c.start_write(value, ctx);
        });
        match op {
            Some(op) => {
                let latency = op.latency();
                op.outcome.map(|(v, _)| (v, latency))
            }
            None => Err(()),
        }
    }

    /// Crashes a replica now.
    pub fn crash(&mut self, site: SiteId) {
        let at = self.sim.now();
        Cluster::crash_at(self.sim.scheduler(), at, site);
        self.sim.run_until(at);
    }

    /// Recovers a replica now.
    pub fn recover(&mut self, site: SiteId) {
        let at = self.sim.now();
        Cluster::recover_at(self.sim.scheduler(), at, site);
        self.sim.run_until(at);
    }

    /// Imposes a partition now.
    pub fn partition(&mut self, p: Partition) {
        let at = self.sim.now();
        Cluster::set_partition_at(self.sim.scheduler(), at, p);
        self.sim.run_until(at);
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        let sites = self.sim.world.nodes.len();
        self.partition(Partition::whole(sites));
    }

    /// Lets asynchronous propagation settle.
    pub fn advance(&mut self, d: SimDuration) {
        let deadline = self.sim.now() + d;
        self.sim.run_until(deadline);
    }

    /// A replica's current version (for staleness checks).
    pub fn version_at(&self, site: SiteId) -> Option<Version> {
        match &self.sim.world.nodes[site.index()] {
            BNode::Server(s) => Some(s.version()),
            BNode::Client(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_history_is_independent_of_the_building_thread() {
        // Same contract as wv_core::harness: worker-thread trials replay
        // the main-thread history exactly.
        fn trial(seed: u64) -> (Version, SimDuration, SimDuration) {
            let mut h = BaselineHarness::uniform(Scheme::Majority, 3, seed);
            let (wv, wl) = h.write(b"t".to_vec()).expect("write");
            let (_, _, rl) = h.read().expect("read");
            (wv, wl, rl)
        }
        let on_main: Vec<_> = (0..4u64).map(trial).collect();
        let on_workers: Vec<_> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|seed| scope.spawn(move || trial(seed)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(on_main, on_workers);
    }

    #[test]
    fn rowa_round_trip_and_write_blocking() {
        let mut h = BaselineHarness::uniform(Scheme::Rowa, 3, 1);
        let (v, _) = h.write(b"a".to_vec()).expect("write all up");
        assert_eq!(v, Version(1));
        let (rv, val, _) = h.read().expect("read");
        assert_eq!(rv, Version(1));
        assert_eq!(&val[..], b"a");
        // One crash blocks ROWA writes but not reads.
        h.crash(SiteId(0));
        assert!(h.write(b"b".to_vec()).is_err());
        assert!(h.read().is_ok());
    }

    #[test]
    fn primary_round_trip_and_primary_loss() {
        let mut h = BaselineHarness::uniform(
            Scheme::Primary {
                primary: SiteId(0),
                local_reads: false,
            },
            3,
            2,
        );
        let (v, _) = h.write(b"a".to_vec()).expect("write via primary");
        assert_eq!(v, Version(1));
        h.advance(SimDuration::from_secs(1));
        // Propagation reached the backups.
        assert_eq!(h.version_at(SiteId(1)), Some(Version(1)));
        assert_eq!(h.version_at(SiteId(2)), Some(Version(1)));
        // Primary down: everything blocks, even though backups are alive.
        h.crash(SiteId(0));
        assert!(h.write(b"b".to_vec()).is_err());
        assert!(h.read().is_err());
    }

    #[test]
    fn primary_local_reads_can_be_stale() {
        // Client (site 3) sits next to backup 1 (10 ms); the primary and
        // its propagation links are slow (100/500 ms), so a local read
        // lands before the update does.
        let mut net = NetConfig::uniform(4, LatencyModel::constant_millis(100));
        net.set_link_symmetric(SiteId(3), SiteId(1), LatencyModel::constant_millis(10));
        net.set_link(SiteId(0), SiteId(1), LatencyModel::constant_millis(500));
        net.set_link(SiteId(0), SiteId(2), LatencyModel::constant_millis(500));
        let mut h = BaselineHarness::new(
            Scheme::Primary {
                primary: SiteId(0),
                local_reads: true,
            },
            3,
            net,
            3,
            SimDuration::from_secs(5),
        );
        h.write(b"fresh".to_vec()).expect("write");
        // Do NOT advance: propagation is still in flight, so a local read
        // from a backup sees the old (empty) state.
        let (v, _, _) = h.read().expect("local read");
        assert_eq!(v, Version(0), "stale local read before propagation");
        h.advance(SimDuration::from_secs(1));
        let (v, val, _) = h.read().expect("local read after propagation");
        assert_eq!(v, Version(1));
        assert_eq!(&val[..], b"fresh");
    }

    #[test]
    fn majority_survives_minority_failures() {
        let mut h = BaselineHarness::uniform(Scheme::Majority, 3, 4);
        let (v, _) = h.write(b"a".to_vec()).expect("write");
        assert_eq!(v, Version(1));
        h.crash(SiteId(2));
        let (v2, _) = h.write(b"b".to_vec()).expect("write with 2 of 3");
        assert_eq!(v2, Version(2));
        let (rv, val, _) = h.read().expect("read with 2 of 3");
        assert_eq!(rv, Version(2));
        assert_eq!(&val[..], b"b");
        // Losing the majority blocks.
        h.crash(SiteId(1));
        assert!(h.write(b"c".to_vec()).is_err());
        assert!(h.read().is_err());
    }

    #[test]
    fn majority_write_is_monotone_after_recovery() {
        let mut h = BaselineHarness::uniform(Scheme::Majority, 3, 5);
        h.crash(SiteId(2));
        h.write(b"one".to_vec()).expect("write at majority");
        h.recover(SiteId(2));
        // Site 2 missed the write; a majority read still sees it.
        let (v, val, _) = h.read().expect("read");
        assert_eq!(v, Version(1));
        assert_eq!(&val[..], b"one");
        // A new write gets timestamp 2 even if it lands on the lagging site.
        let (v2, _) = h.write(b"two".to_vec()).expect("write");
        assert_eq!(v2, Version(2));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut h = BaselineHarness::uniform(Scheme::Majority, 3, seed);
            let (_, wl) = h.write(b"x".to_vec()).expect("write");
            let (_, _, rl) = h.read().expect("read");
            (wl, rl)
        };
        assert_eq!(run(9), run(9));
    }
}
