//! Baseline replica-control schemes the paper positions itself against.
//!
//! Three classical schemes, implemented as event-driven protocol nodes on
//! the same simulated network as weighted voting, so the comparison
//! experiments (E6) measure protocol differences rather than harness
//! differences:
//!
//! * **Read-one / write-all** (à la SDD-1): reads touch any single
//!   replica; writes must install at *every* replica. Maximum read
//!   availability and performance, but a single crashed site blocks all
//!   writes.
//! * **Primary copy** (à la distributed INGRES): one distinguished replica
//!   orders all writes and serves strong reads; backups receive
//!   asynchronous propagation and may serve stale local reads if allowed.
//!   Loss of the primary blocks everything until it returns.
//! * **Majority consensus** (Thomas 1979): timestamped values; reads and
//!   writes each gather a majority, with the highest timestamp winning.
//!   The special case of weighted voting with equal votes and
//!   `r = w = ⌈(N+1)/2⌉`.
//!
//! Weighted voting subsumes all three as vote/quorum corner cases; these
//! standalone implementations exist so the E6 experiment can compare
//! *native* protocol behaviour (e.g. ROWA's blind write-all without a
//! version inquiry) instead of emulating them through the suite machinery.

#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod msg;
pub mod server;

pub use client::{BaselineClient, BaselineOp, Scheme};
pub use harness::BaselineHarness;
pub use msg::BMsg;
pub use server::BaselineServer;
