//! Wire protocol shared by the baseline schemes.

use bytes::Bytes;
use wv_storage::Version;

/// One operation attempt, unique per client.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BReq(pub u64);

/// Baseline protocol messages.
///
/// `Version` doubles as Thomas' timestamp: both are monotone counters
/// chosen by writers, so one wire format serves all three schemes.
#[derive(Clone, Debug, PartialEq)]
pub enum BMsg {
    /// Read the replica's current value.
    ReadReq {
        /// Attempt id.
        req: BReq,
    },
    /// The replica's value and version/timestamp.
    ReadResp {
        /// The reading attempt.
        req: BReq,
        /// Version/timestamp of the value.
        version: Version,
        /// The value.
        value: Bytes,
    },
    /// Install `(version, value)` if `version` is newer (Thomas write
    /// rule); used by majority consensus and by primary→backup
    /// propagation.
    Install {
        /// The installing attempt.
        req: BReq,
        /// Version/timestamp to install.
        version: Version,
        /// Value to install.
        value: Bytes,
    },
    /// Acknowledge an install, reporting the replica's (possibly newer)
    /// version afterwards.
    InstallAck {
        /// The installing attempt.
        req: BReq,
        /// The replica's version after the install.
        version: Version,
    },
    /// ROWA/primary: append a write; the replica assigns the next version
    /// itself. Only ever sent to a replica that orders writes (the primary,
    /// or — for ROWA — every replica under an external all-or-nothing
    /// contract).
    WriteReq {
        /// The writing attempt.
        req: BReq,
        /// Value to append.
        value: Bytes,
    },
    /// Acknowledge a `WriteReq` with the version assigned.
    WriteAck {
        /// The writing attempt.
        req: BReq,
        /// The version the replica assigned.
        version: Version,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_clone_and_eq() {
        let m = BMsg::Install {
            req: BReq(7),
            version: Version(3),
            value: Bytes::from_static(b"x"),
        };
        assert_eq!(m.clone(), m);
        let r = BMsg::ReadReq { req: BReq(1) };
        assert_ne!(r, BMsg::ReadReq { req: BReq(2) });
    }
}
