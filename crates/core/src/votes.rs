//! Vote assignments: how many votes each representative holds.
//!
//! The vote assignment is the paper's central tuning knob. Placing all
//! votes on one site gives a primary-site scheme; equal votes with
//! `r = 1, w = N` is read-one/write-all; equal votes with majority quorums
//! is majority voting; zero-vote entries are weak representatives (caches).

use wv_net::SiteId;

/// Votes per representative, indexed by hosting site.
///
/// A site appears at most once. Sites with zero votes are *weak
/// representatives*: they hold data and answer reads but never count
/// toward any quorum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoteAssignment {
    entries: Vec<(SiteId, u32)>,
}

impl VoteAssignment {
    /// Builds an assignment from `(site, votes)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a site repeats or the total number of votes is zero —
    /// both are configuration bugs, not runtime conditions.
    pub fn new(entries: impl IntoIterator<Item = (SiteId, u32)>) -> Self {
        let entries: Vec<(SiteId, u32)> = entries.into_iter().collect();
        let mut seen = std::collections::HashSet::new();
        for (site, _) in &entries {
            assert!(seen.insert(*site), "site {site} listed twice");
        }
        let total: u32 = entries.iter().map(|(_, v)| *v).sum();
        assert!(total > 0, "a suite needs at least one vote");
        VoteAssignment { entries }
    }

    /// Equal single votes on sites `0..n` — the classic symmetric setup.
    pub fn equal(n: usize) -> Self {
        VoteAssignment::new(SiteId::all(n).map(|s| (s, 1)))
    }

    /// Total votes `N`.
    pub fn total(&self) -> u32 {
        self.entries.iter().map(|(_, v)| *v).sum()
    }

    /// Votes held by `site` (0 if the site hosts nothing or a weak
    /// representative).
    pub fn votes_of(&self, site: SiteId) -> u32 {
        self.entries
            .iter()
            .find(|(s, _)| *s == site)
            .map_or(0, |(_, v)| *v)
    }

    /// True if `site` hosts a representative (strong or weak).
    pub fn hosts(&self, site: SiteId) -> bool {
        self.entries.iter().any(|(s, _)| *s == site)
    }

    /// True if `site` hosts a weak (zero-vote) representative.
    pub fn is_weak(&self, site: SiteId) -> bool {
        self.entries.iter().any(|(s, v)| *s == site && *v == 0)
    }

    /// All `(site, votes)` entries, in declaration order.
    pub fn entries(&self) -> &[(SiteId, u32)] {
        &self.entries
    }

    /// Sites holding at least one vote.
    pub fn strong_sites(&self) -> Vec<SiteId> {
        self.entries
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Sites hosting weak representatives.
    pub fn weak_sites(&self) -> Vec<SiteId> {
        self.entries
            .iter()
            .filter(|(_, v)| *v == 0)
            .map(|(s, _)| *s)
            .collect()
    }

    /// All hosting sites (strong and weak).
    pub fn all_sites(&self) -> Vec<SiteId> {
        self.entries.iter().map(|(s, _)| *s).collect()
    }

    /// Sum of votes over `sites` (each site counted once even if repeated).
    pub fn votes_in<'a>(&self, sites: impl IntoIterator<Item = &'a SiteId>) -> u32 {
        let unique: std::collections::HashSet<SiteId> = sites.into_iter().copied().collect();
        unique.iter().map(|s| self.votes_of(*s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u16) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn totals_and_lookup() {
        let a = VoteAssignment::new([(s(0), 2), (s(1), 1), (s(2), 1), (s(3), 0)]);
        assert_eq!(a.total(), 4);
        assert_eq!(a.votes_of(s(0)), 2);
        assert_eq!(a.votes_of(s(3)), 0);
        assert_eq!(a.votes_of(s(9)), 0);
        assert!(a.hosts(s(3)));
        assert!(!a.hosts(s(9)));
        assert!(a.is_weak(s(3)));
        assert!(!a.is_weak(s(0)));
        assert!(!a.is_weak(s(9)));
    }

    #[test]
    fn strong_and_weak_partitions() {
        let a = VoteAssignment::new([(s(0), 1), (s(1), 0), (s(2), 3)]);
        assert_eq!(a.strong_sites(), vec![s(0), s(2)]);
        assert_eq!(a.weak_sites(), vec![s(1)]);
        assert_eq!(a.all_sites(), vec![s(0), s(1), s(2)]);
    }

    #[test]
    fn equal_assignment() {
        let a = VoteAssignment::equal(5);
        assert_eq!(a.total(), 5);
        assert!(SiteId::all(5).all(|site| a.votes_of(site) == 1));
    }

    #[test]
    fn votes_in_counts_each_site_once() {
        let a = VoteAssignment::new([(s(0), 2), (s(1), 1)]);
        let sites = [s(0), s(0), s(1), s(7)];
        assert_eq!(a.votes_in(&sites), 3);
        assert_eq!(a.votes_in(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_site_rejected() {
        let _ = VoteAssignment::new([(s(0), 1), (s(0), 2)]);
    }

    #[test]
    #[should_panic(expected = "at least one vote")]
    fn all_weak_rejected() {
        let _ = VoteAssignment::new([(s(0), 0), (s(1), 0)]);
    }
}
