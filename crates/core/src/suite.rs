//! The replicated suite configuration — the paper's "prefix".
//!
//! Gifford stores the vote assignment and quorum sizes in a replicated
//! prefix attached to the suite, updated under the *old* configuration's
//! write quorum so that reconfiguration is just another quorum write. We
//! realise that by storing the serialised [`SuiteConfig`] as a second
//! object (the *config object*) in the same containers that hold the data
//! object; its version number is the configuration generation.

use wv_net::SiteId;
use wv_storage::ObjectId;

use crate::quorum::{QuorumError, QuorumSpec};
use crate::votes::VoteAssignment;

/// High bit tag distinguishing config objects from data objects.
const CONFIG_TAG: u64 = 1 << 63;

/// The object under which a suite's data lives.
pub fn data_object(suite: ObjectId) -> ObjectId {
    assert_eq!(
        suite.0 & CONFIG_TAG,
        0,
        "suite ids must not use the top bit"
    );
    suite
}

/// The object under which a suite's configuration lives.
pub fn config_object(suite: ObjectId) -> ObjectId {
    assert_eq!(
        suite.0 & CONFIG_TAG,
        0,
        "suite ids must not use the top bit"
    );
    ObjectId(suite.0 | CONFIG_TAG)
}

/// The suite any object belongs to: itself for data objects, the tagged
/// suite for config objects. This is the lock-shard key — see
/// `wv_txn::shard::shard_key`, which must agree with it.
pub fn suite_of(object: ObjectId) -> ObjectId {
    ObjectId(object.0 & !CONFIG_TAG)
}

/// True if `object` is a config object, and if so, for which suite.
pub fn suite_of_config_object(object: ObjectId) -> Option<ObjectId> {
    if object.0 & CONFIG_TAG != 0 {
        Some(ObjectId(object.0 & !CONFIG_TAG))
    } else {
        None
    }
}

/// A suite's complete replication configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuiteConfig {
    /// The suite's data object id.
    pub suite: ObjectId,
    /// Votes per hosting site.
    pub assignment: VoteAssignment,
    /// Read/write quorum sizes.
    pub quorum: QuorumSpec,
    /// Configuration generation; bumped by each reconfiguration.
    pub generation: u64,
}

impl SuiteConfig {
    /// Builds and validates a configuration at generation 1.
    pub fn new(
        suite: ObjectId,
        assignment: VoteAssignment,
        quorum: QuorumSpec,
    ) -> Result<Self, QuorumError> {
        quorum.validate(&assignment)?;
        Ok(SuiteConfig {
            suite,
            assignment,
            quorum,
            generation: 1,
        })
    }

    /// Builds a configuration at generation 1 *without* the quorum
    /// intersection check.
    ///
    /// This exists solely for fault-injection work: the chaos campaign
    /// deliberately runs clusters whose quorums do not intersect
    /// (`r + w = N`) to prove that the history oracle catches the resulting
    /// stale reads. Production paths must go through [`SuiteConfig::new`].
    pub fn new_unchecked(suite: ObjectId, assignment: VoteAssignment, quorum: QuorumSpec) -> Self {
        SuiteConfig {
            suite,
            assignment,
            quorum,
            generation: 1,
        }
    }

    /// The successor configuration with a new assignment and quorum.
    pub fn evolve(
        &self,
        assignment: VoteAssignment,
        quorum: QuorumSpec,
    ) -> Result<Self, QuorumError> {
        quorum.validate(&assignment)?;
        Ok(SuiteConfig {
            suite: self.suite,
            assignment,
            quorum,
            generation: self.generation + 1,
        })
    }

    /// Serialises for storage in the config object.
    pub fn encode(&self) -> Vec<u8> {
        // A compact hand-rolled encoding: no serde_json in the approved
        // dependency set, and the format is internal to the repository.
        let mut out = Vec::new();
        out.extend_from_slice(&self.suite.0.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.quorum.read.to_le_bytes());
        out.extend_from_slice(&self.quorum.write.to_le_bytes());
        let entries = self.assignment.entries();
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (site, votes) in entries {
            out.extend_from_slice(&site.0.to_le_bytes());
            out.extend_from_slice(&votes.to_le_bytes());
        }
        out
    }

    /// Parses what [`SuiteConfig::encode`] produced.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        fn take<const N: usize>(b: &mut &[u8]) -> Option<[u8; N]> {
            if b.len() < N {
                return None;
            }
            let (head, rest) = b.split_at(N);
            *b = rest;
            head.try_into().ok()
        }
        let mut b = bytes;
        let suite = ObjectId(u64::from_le_bytes(take::<8>(&mut b)?));
        let generation = u64::from_le_bytes(take::<8>(&mut b)?);
        let read = u32::from_le_bytes(take::<4>(&mut b)?);
        let write = u32::from_le_bytes(take::<4>(&mut b)?);
        let n = u32::from_le_bytes(take::<4>(&mut b)?) as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let site = SiteId(u16::from_le_bytes(take::<2>(&mut b)?));
            let votes = u32::from_le_bytes(take::<4>(&mut b)?);
            entries.push((site, votes));
        }
        if !b.is_empty() {
            return None;
        }
        Some(SuiteConfig {
            suite,
            assignment: VoteAssignment::new(entries),
            quorum: QuorumSpec::new(read, write),
            generation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SuiteConfig {
        SuiteConfig::new(
            ObjectId(5),
            VoteAssignment::new([
                (SiteId(0), 2),
                (SiteId(1), 1),
                (SiteId(2), 1),
                (SiteId(3), 0),
            ]),
            QuorumSpec::new(2, 3),
        )
        .expect("legal")
    }

    #[test]
    fn object_id_mapping_is_a_bijection() {
        let suite = ObjectId(42);
        assert_eq!(data_object(suite), suite);
        let cfg = config_object(suite);
        assert_ne!(cfg, suite);
        assert_eq!(suite_of_config_object(cfg), Some(suite));
        assert_eq!(suite_of_config_object(suite), None);
        // Both object kinds belong to the suite, and the lock-shard key
        // in wv-txn agrees with this mapping bit for bit.
        assert_eq!(suite_of(suite), suite);
        assert_eq!(suite_of(cfg), suite);
        assert_eq!(wv_txn::shard::shard_key(suite), suite_of(suite));
        assert_eq!(wv_txn::shard::shard_key(cfg), suite_of(cfg));
    }

    #[test]
    #[should_panic(expected = "top bit")]
    fn config_tagged_suite_ids_rejected() {
        let _ = config_object(ObjectId(1 << 63));
    }

    #[test]
    fn new_validates_quorum() {
        let bad = SuiteConfig::new(ObjectId(1), VoteAssignment::equal(4), QuorumSpec::new(2, 2));
        assert!(bad.is_err());
    }

    #[test]
    fn new_unchecked_skips_the_intersection_check() {
        // r + w = N: illegal for `new`, accepted by the fault-injection
        // constructor so chaos tests can run a deliberately broken cluster.
        let cfg = SuiteConfig::new_unchecked(
            ObjectId(1),
            VoteAssignment::equal(4),
            QuorumSpec::new(2, 2),
        );
        assert_eq!(cfg.generation, 1);
        assert_eq!(cfg.quorum, QuorumSpec::new(2, 2));
    }

    #[test]
    fn evolve_bumps_generation_and_validates() {
        let c = config();
        let c2 = c
            .evolve(VoteAssignment::equal(3), QuorumSpec::majority(3))
            .expect("legal");
        assert_eq!(c2.generation, 2);
        assert_eq!(c2.suite, c.suite);
        assert!(c
            .evolve(VoteAssignment::equal(4), QuorumSpec::new(1, 1))
            .is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = config();
        let bytes = c.encode();
        let back = SuiteConfig::decode(&bytes).expect("decodes");
        assert_eq!(back, c);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SuiteConfig::decode(&[]).is_none());
        assert!(SuiteConfig::decode(&[1, 2, 3]).is_none());
        let mut bytes = config().encode();
        bytes.push(0); // trailing garbage
        assert!(SuiteConfig::decode(&bytes).is_none());
    }

    mod props {
        //! Randomized round-trip checks over seeded cases (offline stand-in
        //! for the old proptest strategies; every seed reproduces exactly).

        use super::*;
        use wv_sim::DetRng;

        #[test]
        fn round_trip_any_config() {
            for seed in 0..256u64 {
                let mut rng = DetRng::new(0x5417e ^ seed);
                let suite = rng.below(1 << 62);
                let n = 1 + rng.below(5) as usize;
                let votes: Vec<u32> = (0..n).map(|_| rng.below(5) as u32).collect();
                let gen = 1 + rng.below(99);
                if votes.iter().sum::<u32>() == 0 {
                    continue;
                }
                let total: u32 = votes.iter().sum();
                let assignment = VoteAssignment::new(
                    votes.iter().enumerate().map(|(i, v)| (SiteId::from(i), *v)),
                );
                let mut c =
                    SuiteConfig::new(ObjectId(suite), assignment, QuorumSpec::new(total, 1))
                        .expect("r=N, w=1 is always legal");
                c.generation = gen;
                let back = SuiteConfig::decode(&c.encode()).expect("decodes");
                assert_eq!(back, c, "seed {seed}");
            }
        }
    }
}
