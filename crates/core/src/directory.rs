//! The directory layer: hierarchical names over suite configurations.
//!
//! Gifford's suites are named objects in a file system; with many suites
//! per cluster something has to map human-meaningful names onto suite ids
//! and their replication parameters. The directory is that map — a
//! `tenant/app/environment`-style hierarchy of slash-separated paths,
//! each leaf binding a name to a [`SuiteConfig`] (vote assignment,
//! quorum thresholds, generation).
//!
//! Two pieces:
//!
//! * [`Directory`] — the authoritative registry. Registration validates
//!   paths; [`Directory::adopt`] records a reconfiguration (the new
//!   assignment, quorum, and bumped generation) against every name bound
//!   to the suite.
//! * [`DirectoryCache`] — a client-side memo of `name → (suite,
//!   generation)`. Lookups consult the cache first and fall back to the
//!   authority on a miss; an adoption invalidates every cached binding
//!   for the reconfigured suite, so a later resolve re-reads the
//!   authority and sees the new generation. Hit/miss/invalidation
//!   counters feed the plan-cache experiments.
//!
//! The cache deliberately mirrors the quorum-plan cache's lifecycle: both
//! are built lazily, keyed by suite, and dropped on adoption — and both
//! are strictly per suite, so reconfiguring one suite never disturbs
//! another's cached state.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use wv_storage::ObjectId;

use crate::quorum::QuorumSpec;
use crate::suite::SuiteConfig;
use crate::votes::VoteAssignment;

/// Why a registration was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectoryError {
    /// The path is empty, has empty segments, or starts/ends with `/`.
    MalformedPath(String),
    /// The path is already bound to a different suite.
    NameTaken(String),
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::MalformedPath(p) => write!(f, "malformed directory path {p:?}"),
            DirectoryError::NameTaken(p) => write!(f, "directory path {p:?} already bound"),
        }
    }
}

fn valid_path(path: &str) -> bool {
    !path.is_empty() && path.split('/').all(|seg| !seg.is_empty())
}

/// The authoritative name → suite-configuration registry.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: BTreeMap<String, SuiteConfig>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Binds `path` to `config`. Re-registering the same path for the
    /// same suite updates the entry; binding it to another suite fails.
    pub fn register(&mut self, path: &str, config: SuiteConfig) -> Result<(), DirectoryError> {
        if !valid_path(path) {
            return Err(DirectoryError::MalformedPath(path.to_string()));
        }
        if let Some(existing) = self.entries.get(path) {
            if existing.suite != config.suite {
                return Err(DirectoryError::NameTaken(path.to_string()));
            }
        }
        self.entries.insert(path.to_string(), config);
        Ok(())
    }

    /// The configuration bound to `path`, if any.
    pub fn resolve(&self, path: &str) -> Option<&SuiteConfig> {
        self.entries.get(path)
    }

    /// Every binding under `prefix` (a hierarchy level: `"tenant0"`,
    /// `"tenant0/app1"`, …), in path order. An empty prefix lists all.
    pub fn list(&self, prefix: &str) -> Vec<(&str, ObjectId)> {
        self.entries
            .iter()
            .filter(|(path, _)| {
                prefix.is_empty()
                    || path
                        .strip_prefix(prefix)
                        .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
            })
            .map(|(path, cfg)| (path.as_str(), cfg.suite))
            .collect()
    }

    /// Records a committed reconfiguration of `suite`: every name bound
    /// to it now reports the new assignment, quorum, and generation.
    /// Returns how many bindings changed.
    pub fn adopt(
        &mut self,
        suite: ObjectId,
        assignment: VoteAssignment,
        quorum: QuorumSpec,
        generation: u64,
    ) -> usize {
        let mut changed = 0;
        for cfg in self.entries.values_mut().filter(|c| c.suite == suite) {
            if generation > cfg.generation {
                cfg.assignment = assignment.clone();
                cfg.quorum = quorum;
                cfg.generation = generation;
                changed += 1;
            }
        }
        changed
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Lookup counters for the directory cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectoryCacheStats {
    /// Resolves served from the cache.
    pub hits: u64,
    /// Resolves that consulted the authority.
    pub misses: u64,
    /// Cached bindings dropped by adoptions.
    pub invalidations: u64,
}

/// A client-side memo of resolved bindings, invalidated on adoption.
#[derive(Clone, Debug, Default)]
pub struct DirectoryCache {
    /// `path → (suite, generation)` — the generation the binding was
    /// resolved under, so stale plans are detectable at a glance.
    entries: HashMap<String, (ObjectId, u64)>,
    stats: DirectoryCacheStats,
}

impl DirectoryCache {
    /// An empty cache.
    pub fn new() -> Self {
        DirectoryCache::default()
    }

    /// Resolves `path` through the cache, consulting `authority` on a
    /// miss. Returns the bound suite and the generation it was cached at.
    pub fn resolve(&mut self, path: &str, authority: &Directory) -> Option<(ObjectId, u64)> {
        if let Some(&hit) = self.entries.get(path) {
            self.stats.hits += 1;
            return Some(hit);
        }
        let cfg = authority.resolve(path)?;
        self.stats.misses += 1;
        let binding = (cfg.suite, cfg.generation);
        self.entries.insert(path.to_string(), binding);
        Some(binding)
    }

    /// Drops every cached binding for `suite` — called when a
    /// reconfiguration of that suite is adopted. Bindings for other
    /// suites are untouched.
    pub fn invalidate_suite(&mut self, suite: ObjectId) {
        let before = self.entries.len();
        self.entries.retain(|_, (s, _)| *s != suite);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// The cached binding for `path`, without touching the counters.
    pub fn peek(&self, path: &str) -> Option<(ObjectId, u64)> {
        self.entries.get(path).copied()
    }

    /// Lookup counters.
    pub fn stats(&self) -> DirectoryCacheStats {
        self.stats
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_net::SiteId;

    fn config(suite: u64) -> SuiteConfig {
        SuiteConfig::new(
            ObjectId(suite),
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 2),
        )
        .expect("legal")
    }

    #[test]
    fn register_validates_paths() {
        let mut d = Directory::new();
        assert!(d.register("tenant0/app0/staging", config(1)).is_ok());
        for bad in ["", "/x", "x/", "a//b"] {
            assert_eq!(
                d.register(bad, config(2)),
                Err(DirectoryError::MalformedPath(bad.to_string()))
            );
        }
        // Rebinding to a different suite is refused; same suite updates.
        assert_eq!(
            d.register("tenant0/app0/staging", config(2)),
            Err(DirectoryError::NameTaken("tenant0/app0/staging".into()))
        );
        assert!(d.register("tenant0/app0/staging", config(1)).is_ok());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn resolve_and_hierarchical_list() {
        let mut d = Directory::new();
        d.register("t0/app0/prod", config(1)).unwrap();
        d.register("t0/app0/staging", config(2)).unwrap();
        d.register("t0/app1/prod", config(3)).unwrap();
        d.register("t1/app0/prod", config(4)).unwrap();
        assert_eq!(d.resolve("t0/app1/prod").unwrap().suite, ObjectId(3));
        assert!(
            d.resolve("t0/app1").is_none(),
            "interior nodes are not leaves"
        );
        let t0: Vec<ObjectId> = d.list("t0").into_iter().map(|(_, s)| s).collect();
        assert_eq!(t0, vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
        let app0: Vec<&str> = d.list("t0/app0").into_iter().map(|(p, _)| p).collect();
        assert_eq!(app0, vec!["t0/app0/prod", "t0/app0/staging"]);
        // Prefixes match whole segments, not substrings.
        assert!(d.list("t0/app").is_empty());
        assert_eq!(d.list("").len(), 4);
    }

    #[test]
    fn adopt_updates_every_binding_of_the_suite() {
        let mut d = Directory::new();
        d.register("t0/a/prod", config(1)).unwrap();
        d.register("t0/a/alias", config(1)).unwrap();
        d.register("t0/b/prod", config(2)).unwrap();
        let next = VoteAssignment::new([(SiteId(0), 2), (SiteId(1), 1), (SiteId(2), 1)]);
        assert_eq!(
            d.adopt(ObjectId(1), next.clone(), QuorumSpec::new(2, 3), 2),
            2
        );
        assert_eq!(d.resolve("t0/a/prod").unwrap().generation, 2);
        assert_eq!(
            d.resolve("t0/a/alias").unwrap().quorum,
            QuorumSpec::new(2, 3)
        );
        assert_eq!(
            d.resolve("t0/b/prod").unwrap().generation,
            1,
            "unrelated suite"
        );
        // Stale adoptions (generation not newer) are ignored.
        assert_eq!(d.adopt(ObjectId(1), next, QuorumSpec::new(2, 2), 2), 0);
    }

    #[test]
    fn cache_hits_after_one_miss_and_invalidates_per_suite() {
        let mut d = Directory::new();
        d.register("t0/a/prod", config(1)).unwrap();
        d.register("t0/b/prod", config(2)).unwrap();
        let mut c = DirectoryCache::new();
        assert_eq!(c.resolve("t0/a/prod", &d), Some((ObjectId(1), 1)));
        assert_eq!(c.resolve("t0/a/prod", &d), Some((ObjectId(1), 1)));
        assert_eq!(c.resolve("t0/b/prod", &d), Some((ObjectId(2), 1)));
        assert_eq!(c.resolve("missing", &d), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 0));
        // Suite 1 reconfigures; only its binding drops.
        d.adopt(
            ObjectId(1),
            VoteAssignment::new([(SiteId(0), 2), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 3),
            2,
        );
        c.invalidate_suite(ObjectId(1));
        assert_eq!(c.peek("t0/a/prod"), None);
        assert_eq!(c.peek("t0/b/prod"), Some((ObjectId(2), 1)), "sibling kept");
        // The re-resolve is a miss and sees the adopted generation.
        assert_eq!(c.resolve("t0/a/prod", &d), Some((ObjectId(1), 2)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 3, 1));
        // Invalidating an uncached suite is a no-op.
        c.invalidate_suite(ObjectId(99));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn errors_render() {
        assert_eq!(
            DirectoryError::MalformedPath("a//b".into()).to_string(),
            "malformed directory path \"a//b\""
        );
        assert_eq!(
            DirectoryError::NameTaken("x/y".into()).to_string(),
            "directory path \"x/y\" already bound"
        );
    }
}
