//! Weighted voting for replicated data — Gifford, SOSP 1979.
//!
//! A *file suite* is a logical object realised as a set of
//! *representatives* (copies), each assigned a number of **votes**. The
//! suite carries a read quorum `r` and a write quorum `w` with
//! `r + w > N` (N = total votes), so every read quorum intersects every
//! write quorum. Every representative stores a **version number**; the
//! current contents are those with the highest version number in any read
//! quorum. Zero-vote *weak representatives* serve as caches: they never
//! count toward quorums but can satisfy reads at local latency once
//! validated.
//!
//! Crate layout:
//!
//! * [`votes`] — vote assignments over sites.
//! * [`quorum`] — quorum specifications, legality, and quorum-set math.
//! * [`suite`] — the replicated suite configuration (the paper's "prefix").
//! * [`directory`] — hierarchical names over suites: the authoritative
//!   registry plus a client-side cache invalidated on adoption.
//! * [`msg`] — the wire protocol between clients and suite servers.
//! * [`server`] — the representative server: container + locks + voting.
//! * [`client`] — client-side read/write/reconfigure state machines.
//! * [`node`] — the combined node type hosting servers and clients.
//! * [`harness`] — a synchronous facade over a simulated cluster; the API
//!   the examples and experiments drive.
//! * [`error`] — operation outcomes.
//!
//! # Examples
//!
//! ```
//! use wv_core::harness::{HarnessBuilder, SiteSpec};
//! use wv_core::quorum::QuorumSpec;
//!
//! // Three representatives with one vote each, r = 2, w = 2.
//! let mut h = HarnessBuilder::new()
//!     .seed(7)
//!     .site(SiteSpec::server(1))
//!     .site(SiteSpec::server(1))
//!     .site(SiteSpec::server(1))
//!     .client()
//!     .quorum(QuorumSpec::new(2, 2))
//!     .build()
//!     .expect("valid configuration");
//!
//! let suite = h.suite_id();
//! h.write(suite, b"hello".to_vec()).expect("write succeeds");
//! let read = h.read(suite).expect("read succeeds");
//! assert_eq!(&read.value[..], b"hello");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod directory;
pub mod error;
pub mod harness;
pub mod msg;
pub mod node;
pub mod quorum;
pub mod server;
pub mod suite;
pub mod votes;

pub use directory::{Directory, DirectoryCache};
pub use error::{OpError, OpKind};
pub use harness::{Harness, HarnessBuilder, SiteSpec};
pub use quorum::QuorumSpec;
pub use suite::SuiteConfig;
pub use votes::VoteAssignment;
pub use wv_storage::{ObjectId, Version};
