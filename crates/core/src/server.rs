//! The suite server: a representative's container, locks, and voting.
//!
//! One [`SuiteServer`] runs per hosting site (strong or weak). It serves
//! version inquiries and content reads from committed state, participates
//! in client-coordinated two-phase commit for writes (staging the new
//! version under an exclusive lock, voting, then installing or discarding),
//! applies fire-and-forget weak-representative updates monotonically, and
//! resolves in-doubt transactions after a crash by asking the coordinator.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bytes::Bytes;
use wv_net::{Node, NodeCtx, SiteId};
use wv_sim::trace::{SpanId, SpanKind, SpanOutcome, SpanRecord, Tracer};
use wv_sim::{MetricsRegistry, SimDuration, SimTime};
use wv_storage::{Container, ObjectId, TxId, Version};
use wv_txn::lock::{DeadlockPolicy, LockMode, LockReply, TxToken};
use wv_txn::shard::ShardedLockManager;
use wv_txn::Vote;

use crate::msg::{Msg, PrepareWrite, RefuseReason, ReqId};
use crate::suite::{config_object, data_object, suite_of_config_object, SuiteConfig};

/// Tag bit marking anti-entropy repair timer tokens. Pending-write probe
/// timers use raw request ids, whose counters stay below bit 48, and client
/// timers live behind bit 63 ([`crate::client::CLIENT_TIMER_TAG`]), so bit
/// 62 is free for the repair daemon.
pub const REPAIR_TIMER_TAG: u64 = 1 << 62;

/// Tag bit marking group-commit sync timer tokens (see
/// [`SuiteServer::set_group_commit`]); bit 61 keeps them disjoint from
/// repair ticks (bit 62), client timers (bit 63), and raw request ids.
pub const WAL_SYNC_TIMER_TAG: u64 = 1 << 61;

/// Server-side counters for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Version inquiries answered.
    pub inquiries: u64,
    /// Content reads served.
    pub reads: u64,
    /// Reads turned away because the object was commit-locked.
    pub busy: u64,
    /// Prepares received.
    pub prepares: u64,
    /// Yes votes sent.
    pub votes_yes: u64,
    /// No votes sent.
    pub votes_no: u64,
    /// Writes committed.
    pub commits: u64,
    /// Writes aborted.
    pub aborts: u64,
    /// Requests rejected for stale configuration generation.
    pub stale_config: u64,
    /// Weak-representative updates applied (not counting stale ones).
    pub weak_updates: u64,
    /// Crash recoveries performed.
    pub recoveries: u64,
    /// In-doubt decision probes sent to coordinators.
    pub decision_probes: u64,
    /// Log compactions performed.
    pub checkpoints: u64,
    /// Anti-entropy pulls sent (on recovery and on periodic probes).
    pub repair_probes: u64,
    /// Anti-entropy answers served to stale peers.
    pub repair_serves: u64,
    /// Gossip pushes of committed state at attached weak representatives.
    pub cache_pushes: u64,
    /// Newer committed state installed from a peer's repair answer.
    pub repairs_completed: u64,
    /// Group-commit syncs performed (one durable write each).
    pub wal_batches: u64,
    /// Deferred records (votes + commit applies) that rode those syncs.
    pub wal_batched_records: u64,
    /// Distinct suites represented across those syncs (sum of per-batch
    /// distinct-suite counts): exceeds `wal_batches` exactly when one
    /// flush absorbed concurrent writes to several suites.
    pub wal_batch_suites: u64,
    /// Torn WAL tails truncated during recovery scans (normal crash wear;
    /// only un-acknowledged volatile records are lost).
    pub torn_truncations: u64,
    /// Durable records lost to detected interior WAL corruption.
    pub corrupt_records_detected: u64,
    /// Recoveries that entered quarantine over interior corruption.
    pub quarantines: u64,
    /// Quarantines healed by absorbing a full state pull from every peer.
    pub requarantine_repairs: u64,
    /// Requests refused over transient disk trouble (I/O errors, stalls).
    pub disk_refusals: u64,
    /// Tripwire: corrupted bytes accepted by a recovery scan. Stays zero
    /// unless injected damage collides with CRC-32.
    pub poison_escapes: u64,
    /// Tripwire: responses served while quarantined. Stays zero.
    pub served_while_quarantined: u64,
}

#[derive(Clone, Debug)]
struct PendingWrite {
    tx: TxId,
    token: TxToken,
    objects: Vec<ObjectId>,
    suite: ObjectId,
}

#[derive(Clone, Debug)]
struct WaitingPrepare {
    from: SiteId,
    req: ReqId,
    writes: Vec<PrepareWrite>,
}

/// A response held back until the in-flight group-commit sync lands. The
/// WAL record backing it is already appended (volatile); the response may
/// only leave once that record is durable.
#[derive(Clone, Debug)]
enum Deferred {
    /// A Yes vote whose prepare record awaits the flush.
    Vote {
        to: SiteId,
        suite: ObjectId,
        req: ReqId,
    },
    /// A commit decision to apply at flush time: the commit record joins
    /// the batch and the ack leaves after the single durable write. The
    /// object's commit lock stays held meanwhile, so no read can observe
    /// the not-yet-durable install.
    Commit {
        to: SiteId,
        suite: ObjectId,
        req: ReqId,
    },
}

impl Deferred {
    fn req(&self) -> ReqId {
        match self {
            Deferred::Vote { req, .. } | Deferred::Commit { req, .. } => *req,
        }
    }

    fn suite(&self) -> ObjectId {
        match self {
            Deferred::Vote { suite, .. } | Deferred::Commit { suite, .. } => *suite,
        }
    }
}

/// A representative server node.
pub struct SuiteServer {
    site: SiteId,
    container: Container,
    locks: ShardedLockManager,
    policy: DeadlockPolicy,
    configs: HashMap<ObjectId, SuiteConfig>,
    pending: HashMap<ReqId, PendingWrite>,
    waiting: HashMap<TxToken, WaitingPrepare>,
    /// How long a prepared transaction waits before probing its
    /// coordinator for the decision.
    resolve_after: SimDuration,
    /// Checkpoint the container whenever its log reaches this many
    /// records, keeping recovery time proportional to live state.
    checkpoint_threshold: usize,
    /// Anti-entropy probe interval; `None` (the default) disables the
    /// repair daemon entirely.
    anti_entropy: Option<SimDuration>,
    /// Timers cannot be cancelled, so repair ticks are validated against
    /// this epoch; a crash or a stop bumps it, orphaning in-flight ticks.
    repair_epoch: u64,
    /// Round-robin position over peers for periodic probes.
    repair_cursor: usize,
    /// Client sites with attached weak representatives (the cache tier);
    /// each gossip round pushes committed state to them fire-and-forget.
    /// Empty — the default — leaves the daemon byte-identical to before.
    refresh_clients: Vec<SiteId>,
    /// Counters.
    pub stats: ServerStats,
    /// Span recording; `None` (the default) keeps the hot path untouched.
    /// The tracer never reads the RNG and never emits effects, so enabling
    /// it cannot perturb the protocol.
    tracer: Option<Tracer>,
    /// Windowed telemetry (repair installs, quarantine state); `None`
    /// (the default) disables it, under the same contract as `tracer`.
    telemetry: Option<wv_sim::TelemetryHub>,
    /// Open lock-wait spans of queued prepares, keyed like `waiting`.
    waiting_spans: HashMap<TxToken, SpanId>,
    /// Group-commit sync latency; `None` (the default) flushes every
    /// prepare and commit inline, byte-identical to the classic path.
    group_commit: Option<SimDuration>,
    /// Whether a durable sync is in flight right now.
    sync_active: bool,
    /// Responses (and commit applies) awaiting the in-flight sync.
    sync_queue: Vec<Deferred>,
    /// Sync timers cannot be cancelled; a crash bumps this epoch so an
    /// orphaned in-flight sync dies quietly when its timer fires.
    sync_epoch: u64,
    /// Batched-sync observability (`wal_batch_size` histogram).
    metrics: MetricsRegistry,
    /// Set when recovery detected interior WAL corruption: acknowledged
    /// state may have regressed, so this replica has surrendered its votes
    /// (inquiries, reads, and prepares all refuse) until anti-entropy
    /// repair absorbs a full state pull from every peer.
    quarantined: bool,
    /// Peers whose state the quarantined replica has not yet absorbed, per
    /// hosted suite. A [`Msg::RepairState`] from a peer removes it (any
    /// answer carries the peer's full committed state); draining the whole
    /// map heals the quarantine.
    quarantine_pending: BTreeMap<ObjectId, BTreeSet<SiteId>>,
    /// Injected sync stall: prepares refuse with [`RefuseReason::Disk`]
    /// until this deadline passes. Committed state is intact, so reads
    /// and inquiries keep serving.
    stall_until: Option<SimTime>,
    /// Open quarantine span, when tracing.
    quarantine_span: Option<SpanId>,
    /// The construction-time suite assignments — the deployment manifest.
    /// A recovery that finds a hosted suite's configuration object gone
    /// (interior corruption can truncate the entire log) falls back to
    /// this so the replica still knows which peers to rebuild from; the
    /// possibly-stale geometry is only ever used under quarantine, and
    /// the healing full pulls replace it with the peers' current one.
    seed_configs: Vec<SuiteConfig>,
}

impl SuiteServer {
    /// Creates a server at `site` hosting representatives for `configs`.
    ///
    /// Each suite's configuration is committed into the container (the
    /// replicated prefix) at a version equal to its generation; data
    /// objects start at [`Version::INITIAL`] with empty contents.
    pub fn new(site: SiteId, configs: Vec<SuiteConfig>, policy: DeadlockPolicy) -> Self {
        let mut container = Container::new();
        let mut map = HashMap::new();
        let seed_configs = configs.clone();
        for cfg in configs {
            let tx = container.begin().expect("fresh container");
            container
                .stage_put(
                    tx,
                    config_object(cfg.suite),
                    Version(cfg.generation),
                    cfg.encode(),
                )
                .expect("stage config");
            container.commit(tx).expect("commit config");
            map.insert(cfg.suite, cfg);
        }
        SuiteServer {
            site,
            container,
            locks: ShardedLockManager::new(policy),
            policy,
            configs: map,
            pending: HashMap::new(),
            waiting: HashMap::new(),
            resolve_after: SimDuration::from_secs(5),
            checkpoint_threshold: 512,
            anti_entropy: None,
            repair_epoch: 0,
            repair_cursor: 0,
            refresh_clients: Vec::new(),
            stats: ServerStats::default(),
            tracer: None,
            telemetry: None,
            waiting_spans: HashMap::new(),
            group_commit: None,
            sync_active: false,
            sync_queue: Vec::new(),
            sync_epoch: 0,
            metrics: MetricsRegistry::new(),
            quarantined: false,
            quarantine_pending: BTreeMap::new(),
            stall_until: None,
            quarantine_span: None,
            seed_configs,
        }
    }

    /// Turns on span recording. Idempotent; spans accumulate until drained
    /// with [`Self::take_trace`].
    pub fn enable_tracing(&mut self) {
        if self.tracer.is_none() {
            self.tracer = Some(Tracer::new(self.site.0));
        }
    }

    /// Whether span recording is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Drains the recorded spans (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<SpanRecord> {
        self.tracer.as_mut().map(Tracer::take).unwrap_or_default()
    }

    /// Turns on windowed telemetry (repair installs and quarantine
    /// state). Idempotent; windows accumulate until drained with
    /// [`Self::take_telemetry`].
    pub fn enable_telemetry(&mut self, options: wv_sim::TelemetryOptions) {
        if self.telemetry.is_none() {
            self.telemetry = Some(wv_sim::TelemetryHub::new(options));
        }
    }

    /// Takes the telemetry hub for merging (None when telemetry is off).
    pub fn take_telemetry(&mut self) -> Option<wv_sim::TelemetryHub> {
        self.telemetry.take()
    }

    /// Overrides the in-doubt probe interval.
    pub fn set_resolve_after(&mut self, d: SimDuration) {
        self.resolve_after = d;
    }

    /// Overrides the log-compaction threshold (records).
    pub fn set_checkpoint_threshold(&mut self, records: usize) {
        assert!(records > 0, "threshold must be positive");
        self.checkpoint_threshold = records;
    }

    /// Enables the background anti-entropy daemon with the given probe
    /// interval. Ticks start once [`Self::start_anti_entropy`] runs (the
    /// harness arms it at construction; recovery re-arms it).
    pub fn set_anti_entropy(&mut self, interval: SimDuration) {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        self.anti_entropy = Some(interval);
    }

    /// Disables the repair daemon; any armed tick dies quietly when it
    /// fires. Harnesses call this before draining the event queue, since a
    /// perpetual gossip timer would otherwise never let the system quiesce.
    pub fn stop_anti_entropy(&mut self) {
        self.anti_entropy = None;
        self.repair_epoch += 1;
    }

    /// Whether the repair daemon is configured.
    pub fn anti_entropy_enabled(&self) -> bool {
        self.anti_entropy.is_some()
    }

    /// Registers client sites whose attached weak representatives the
    /// gossip rounds refresh ([`Msg::UpdateWeak`] pushes of committed
    /// state). The clients install monotonically, so a stale push is
    /// harmless; an empty list (the default) changes nothing.
    pub fn set_cache_refresh_targets(&mut self, sites: Vec<SiteId>) {
        self.refresh_clients = sites;
    }

    /// Enables group commit: WAL appends for prepares and commit applies
    /// are left volatile and batched into one durable sync that completes
    /// `latency` after the first record queues. Responses (votes, acks)
    /// leave only once their records are durable, so the promise a reply
    /// carries is exactly as strong as on the classic path.
    pub fn set_group_commit(&mut self, latency: SimDuration) {
        assert!(latency > SimDuration::ZERO, "sync latency must be positive");
        self.group_commit = Some(latency);
    }

    /// Whether group commit is configured.
    pub fn group_commit_enabled(&self) -> bool {
        self.group_commit.is_some()
    }

    /// Batched-sync observability: the `wal_batch_size` histogram plus
    /// whatever later layers record. Empty unless group commit is on.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Arms the periodic repair timer. Each call starts a fresh epoch,
    /// orphaning any previously armed tick, so it is safe to call again
    /// after a recovery. A no-op while the daemon is disabled.
    pub fn start_anti_entropy(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        if let Some(interval) = self.anti_entropy {
            self.repair_epoch += 1;
            ctx.set_timer(interval, REPAIR_TIMER_TAG | self.repair_epoch);
        }
    }

    /// Seeds this server's disk-damage placement stream (see
    /// [`wv_storage::DiskFaults`]). The harness derives one seed per site
    /// from the master seed so campaigns stay bit-identical.
    pub fn set_disk_fault_seed(&mut self, seed: u64) {
        self.container.disk_faults().seed(seed);
    }

    /// Arms a torn write: the next crash persists a partial prefix of the
    /// volatile WAL tail instead of dropping it cleanly.
    pub fn arm_torn_write(&mut self) {
        self.container.disk_faults().arm_torn_write();
    }

    /// Arms one bit flip of durable WAL bytes, applied at the next crash.
    pub fn arm_bit_flip(&mut self) {
        self.container.disk_faults().arm_bit_flip();
    }

    /// The next `n` new transactions fail to start with an I/O error.
    pub fn inject_io_errors(&mut self, n: u32) {
        self.container.disk_faults().inject_io_errors(n);
    }

    /// Injected sync stall: prepares refuse with [`RefuseReason::Disk`]
    /// until `d` past `now`. Overlapping stalls keep the later deadline.
    pub fn disk_stall(&mut self, d: SimDuration, now: SimTime) {
        let until = now + d;
        self.stall_until = Some(match self.stall_until {
            Some(t) if t > until => t,
            _ => until,
        });
    }

    /// Whether this replica is quarantined (votes surrendered pending a
    /// full anti-entropy repair).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// True while an injected sync stall holds the WAL device; lazily
    /// clears once the deadline passes.
    fn stalled(&mut self, now: SimTime) -> bool {
        match self.stall_until {
            Some(t) if now < t => true,
            Some(_) => {
                self.stall_until = None;
                false
            }
            None => false,
        }
    }

    /// Tripwire for the chaos oracle: every serving send site calls this.
    /// A quarantined replica must have refused long before reaching one.
    fn note_serving(&mut self) {
        if self.quarantined {
            self.stats.served_while_quarantined += 1;
        }
    }

    /// Hosted suites in deterministic order.
    fn hosted_suites(&self) -> Vec<ObjectId> {
        let mut suites: Vec<ObjectId> = self.configs.keys().copied().collect();
        suites.sort_by_key(|o| o.0);
        suites
    }

    /// The other representatives of `suite`, strong and weak alike.
    fn peers_of(&self, suite: ObjectId) -> Vec<SiteId> {
        self.configs.get(&suite).map_or_else(Vec::new, |cfg| {
            cfg.assignment
                .all_sites()
                .into_iter()
                .filter(|&s| s != self.site)
                .collect()
        })
    }

    /// One gossip round: each hosted suite pulls from its next peer in
    /// round-robin order, announcing the version already held so an
    /// up-to-date peer answers nothing.
    fn run_repair_probe(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        if self.quarantined {
            // Degraded mode: keep pulling full state from every peer not
            // yet absorbed, and push nothing — this replica's own state is
            // suspect until the quarantine heals.
            let pending: Vec<(ObjectId, Vec<SiteId>)> = self
                .quarantine_pending
                .iter()
                .map(|(s, peers)| (*s, peers.iter().copied().collect()))
                .collect();
            for (suite, peers) in pending {
                let have = self.data_version(suite);
                for peer in peers {
                    self.stats.repair_probes += 1;
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.event(
                            SpanKind::RepairPull,
                            suite.0,
                            0,
                            None,
                            Some(peer.0),
                            have.0,
                            ctx.now(),
                        );
                    }
                    ctx.send(
                        peer,
                        Msg::RepairPull {
                            suite,
                            have,
                            full: true,
                        },
                    );
                }
            }
            return;
        }
        for suite in self.hosted_suites() {
            let peers = self.peers_of(suite);
            if peers.is_empty() {
                continue;
            }
            let peer = peers[self.repair_cursor % peers.len()];
            self.repair_cursor = self.repair_cursor.wrapping_add(1);
            self.stats.repair_probes += 1;
            let have = self.data_version(suite);
            if let Some(tr) = self.tracer.as_mut() {
                tr.event(
                    SpanKind::RepairPull,
                    suite.0,
                    0,
                    None,
                    Some(peer.0),
                    have.0,
                    ctx.now(),
                );
            }
            ctx.send(
                peer,
                Msg::RepairPull {
                    suite,
                    have,
                    full: false,
                },
            );
        }
        // The same round refreshes attached weak representatives: push
        // committed state at every registered client site. Fire-and-forget
        // and monotonic on the receiving end, like any weak update.
        let targets = self.refresh_clients.clone();
        if !targets.is_empty() {
            for suite in self.hosted_suites() {
                let version = self.data_version(suite);
                if version == Version::INITIAL {
                    continue;
                }
                let value = self.data_value(suite);
                for &client in &targets {
                    self.stats.cache_pushes += 1;
                    ctx.send(
                        client,
                        Msg::UpdateWeak {
                            suite,
                            version,
                            value: value.clone(),
                        },
                    );
                }
            }
        }
    }

    /// Recovery-time catch-up: pull every hosted suite from every peer at
    /// once. The recovering representative is the one most likely to be
    /// stale, and fan-out makes catch-up latency one round-trip to the
    /// nearest live up-to-date peer.
    fn pull_from_all_peers(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        let full = self.quarantined;
        for suite in self.hosted_suites() {
            let have = self.data_version(suite);
            for peer in self.peers_of(suite) {
                self.stats.repair_probes += 1;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.event(
                        SpanKind::RepairPull,
                        suite.0,
                        0,
                        None,
                        Some(peer.0),
                        have.0,
                        ctx.now(),
                    );
                }
                ctx.send(peer, Msg::RepairPull { suite, have, full });
            }
        }
    }

    fn maybe_checkpoint(&mut self) {
        if self.container.wal().len() >= self.checkpoint_threshold {
            self.container.checkpoint().expect("server container is up");
            self.stats.checkpoints += 1;
        }
    }

    /// This server's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The committed version of a suite's data at this representative.
    pub fn data_version(&self, suite: ObjectId) -> Version {
        self.container
            .read_version(data_object(suite))
            .unwrap_or(Version::INITIAL)
    }

    /// The committed contents of a suite's data at this representative.
    pub fn data_value(&self, suite: ObjectId) -> Bytes {
        self.container
            .read(data_object(suite))
            .map(|vv| vv.value)
            .unwrap_or_default()
    }

    /// The configuration this server currently holds for `suite`.
    pub fn config(&self, suite: ObjectId) -> Option<&SuiteConfig> {
        self.configs.get(&suite)
    }

    /// Number of unresolved prepared writes (for tests).
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Direct access to the container (tests and benches).
    pub fn container(&self) -> &Container {
        &self.container
    }

    fn generation_of(&self, suite: ObjectId) -> u64 {
        self.configs.get(&suite).map_or(0, |c| c.generation)
    }

    /// Completes a prepare whose locks are (now) all held: version-check
    /// every entry, stage them into one atomic transaction, promise, vote.
    fn finish_prepare(&mut self, w: WaitingPrepare, token: TxToken, ctx: &mut NodeCtx<'_, Msg>) {
        let suite = w.writes.first().map(|pw| pw.suite).unwrap_or(ObjectId(0));
        let stale = w.writes.iter().any(|pw| {
            let committed = self
                .container
                .read_version(pw.object)
                .unwrap_or(Version::INITIAL);
            // A concurrent writer already installed this or a later
            // version; voting yes would let the coordinator regress it.
            pw.version <= committed
        });
        if stale {
            for g in self.locks.release_all(token) {
                self.resume_waiter(g.tx, ctx);
            }
            self.stats.votes_no += 1;
            ctx.send(
                w.from,
                Msg::PrepareVote {
                    suite,
                    req: w.req,
                    vote: Vote::No,
                },
            );
            return;
        }
        let tx = match self.container.begin() {
            Ok(tx) => tx,
            Err(_) => {
                // An injected I/O error kept the prepare record off the
                // log. Nothing was promised; release the locks and tell
                // the coordinator the disk (not the data) said no.
                for g in self.locks.release_all(token) {
                    self.resume_waiter(g.tx, ctx);
                }
                self.stats.disk_refusals += 1;
                ctx.send(
                    w.from,
                    Msg::Refused {
                        suite,
                        req: w.req,
                        reason: RefuseReason::Disk,
                    },
                );
                return;
            }
        };
        for pw in &w.writes {
            self.container
                .stage_put(tx, pw.object, pw.version, pw.value.clone())
                .expect("stage into fresh tx");
        }
        if self.group_commit.is_some() {
            self.container
                .prepare_with_note_unflushed(tx, w.req.0)
                .expect("prepare fresh tx");
        } else {
            self.container
                .prepare_with_note(tx, w.req.0)
                .expect("prepare fresh tx");
        }
        if let Some(tr) = self.tracer.as_mut() {
            let staged = w.writes.first().map(|pw| pw.version.0).unwrap_or(0);
            tr.event(
                SpanKind::WalWrite,
                suite.0,
                w.req.0,
                None,
                Some(w.from.0),
                staged,
                ctx.now(),
            );
        }
        self.pending.insert(
            w.req,
            PendingWrite {
                tx,
                token,
                objects: w.writes.iter().map(|pw| pw.object).collect(),
                suite,
            },
        );
        if self.group_commit.is_some() {
            // The prepare record is still volatile; the yes vote (and the
            // decision-probe timer that guards it) waits for the sync.
            self.defer(
                Deferred::Vote {
                    to: w.from,
                    suite,
                    req: w.req,
                },
                ctx,
            );
            return;
        }
        // Probe the coordinator if the decision takes too long.
        ctx.set_timer(self.resolve_after, w.req.0);
        self.note_serving();
        self.stats.votes_yes += 1;
        ctx.send(
            w.from,
            Msg::PrepareVote {
                suite,
                req: w.req,
                vote: Vote::Yes,
            },
        );
    }

    /// Arms the sync-completion timer for the batch now accumulating.
    fn arm_sync(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        let latency = self.group_commit.expect("group commit enabled");
        self.sync_active = true;
        ctx.set_timer(latency, WAL_SYNC_TIMER_TAG | self.sync_epoch);
    }

    /// Queues a response behind the durable sync, starting one if none is
    /// in flight. Records arriving while a sync runs ride the next batch.
    fn defer(&mut self, d: Deferred, ctx: &mut NodeCtx<'_, Msg>) {
        self.sync_queue.push(d);
        if !self.sync_active {
            self.arm_sync(ctx);
        }
    }

    /// Completes one group-commit sync: applies deferred commit decisions
    /// (still unflushed), makes the whole batch durable with a single WAL
    /// flush, and only then releases the responses and the commit locks.
    /// Prepares resumed by those lock releases defer into the next batch.
    fn run_sync(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        let batch = std::mem::take(&mut self.sync_queue);
        if batch.is_empty() {
            // Everything queued was aborted away before the sync fired.
            self.sync_active = false;
            return;
        }
        // Apply commit decisions before the flush so their Commit records
        // ride the same durable write as the batch's Prepare records. The
        // commit locks stay held until after the flush: reads keep
        // answering Busy, so no observer sees un-durable state.
        let mut unlocks = Vec::new();
        for d in &batch {
            let Deferred::Commit { req, .. } = d else {
                continue;
            };
            let Some(p) = self.pending.remove(req) else {
                // Duplicate commit; the first already applied. Ack only.
                continue;
            };
            self.container
                .commit_unflushed(p.tx)
                .expect("commit prepared tx");
            if let Some(tr) = self.tracer.as_mut() {
                tr.event(SpanKind::Apply, p.suite.0, req.0, None, None, 1, ctx.now());
            }
            for object in &p.objects {
                if let Some(suite) = suite_of_config_object(*object) {
                    self.reload_config(suite);
                }
            }
            self.stats.commits += 1;
            unlocks.push(p.token);
        }
        self.container.flush().expect("server container is up");
        self.stats.wal_batches += 1;
        self.stats.wal_batched_records += batch.len() as u64;
        let batch_suites = batch
            .iter()
            .map(|d| d.suite())
            .collect::<BTreeSet<ObjectId>>()
            .len() as u64;
        self.stats.wal_batch_suites += batch_suites;
        self.metrics
            .observe_ms("wal_batch_size", batch.len() as f64);
        self.metrics
            .observe_ms("wal_batch_suites", batch_suites as f64);
        if let Some(tr) = self.tracer.as_mut() {
            // A batch can span suites; the flush itself is suite 0 (not
            // scoped), with the absorbed-suite count in the server stats.
            tr.event(
                SpanKind::WalBatch,
                0,
                0,
                None,
                None,
                batch.len() as u64,
                ctx.now(),
            );
        }
        // Everything in the batch is durable; release responses in queue
        // (arrival) order.
        for d in batch {
            match d {
                Deferred::Vote { to, suite, req } => {
                    ctx.set_timer(self.resolve_after, req.0);
                    self.note_serving();
                    self.stats.votes_yes += 1;
                    ctx.send(
                        to,
                        Msg::PrepareVote {
                            suite,
                            req,
                            vote: Vote::Yes,
                        },
                    );
                }
                Deferred::Commit { to, suite, req } => {
                    ctx.send(
                        to,
                        Msg::Ack {
                            suite,
                            req,
                            committed: true,
                        },
                    );
                }
            }
        }
        // `sync_active` is still set, so prepares resumed here defer
        // without arming a timer of their own.
        for token in unlocks {
            for g in self.locks.release_all(token) {
                self.resume_waiter(g.tx, ctx);
            }
        }
        self.maybe_checkpoint();
        self.sync_active = false;
        if !self.sync_queue.is_empty() {
            self.arm_sync(ctx);
        }
    }

    fn resume_waiter(&mut self, token: TxToken, ctx: &mut NodeCtx<'_, Msg>) {
        if let Some(w) = self.waiting.remove(&token) {
            if let Some(id) = self.waiting_spans.remove(&token) {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.end(id, ctx.now(), SpanOutcome::Ok);
                }
            }
            self.finish_prepare(w, token, ctx);
        }
    }

    fn apply_commit(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) -> bool {
        let Some(p) = self.pending.remove(&req) else {
            return false;
        };
        self.container.commit(p.tx).expect("commit prepared tx");
        if let Some(tr) = self.tracer.as_mut() {
            tr.event(SpanKind::Apply, p.suite.0, req.0, None, None, 1, ctx.now());
        }
        for object in &p.objects {
            if let Some(suite) = suite_of_config_object(*object) {
                self.reload_config(suite);
            }
        }
        self.maybe_checkpoint();
        self.stats.commits += 1;
        let granted = self.locks.release_all(p.token);
        for g in granted {
            self.resume_waiter(g.tx, ctx);
        }
        true
    }

    fn apply_abort(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        // Purge any deferred response for this request: a queued yes vote
        // must not escape after the abort, and a queued commit apply for
        // an aborted tx would be a protocol error upstream anyway.
        self.sync_queue.retain(|d| d.req() != req);
        if let Some(p) = self.pending.remove(&req) {
            self.container.abort(p.tx).expect("abort prepared tx");
            if let Some(tr) = self.tracer.as_mut() {
                tr.event(SpanKind::Apply, p.suite.0, req.0, None, None, 0, ctx.now());
            }
            self.stats.aborts += 1;
            let granted = self.locks.release_all(p.token);
            for g in granted {
                self.resume_waiter(g.tx, ctx);
            }
            return;
        }
        // Abort of a queued (not yet prepared) request.
        if let Some((&token, _)) = self.waiting.iter().find(|(_, w)| w.req == req) {
            self.waiting.remove(&token);
            if let Some(id) = self.waiting_spans.remove(&token) {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.end(id, ctx.now(), SpanOutcome::Conflict);
                }
            }
            let granted = self.locks.release_all(token);
            for g in granted {
                self.resume_waiter(g.tx, ctx);
            }
            self.stats.aborts += 1;
        }
    }

    /// Marks `peer`'s state for `suite` absorbed by the quarantined
    /// replica. Once every peer of every hosted suite has confirmed, the
    /// quarantine heals: any acknowledged version has an intact holder
    /// among the peers (the chaos layer injects at most one corruption per
    /// schedule and r + w > N), so a full sweep provably restored it.
    fn confirm_repair(&mut self, suite: ObjectId, peer: SiteId, ctx: &mut NodeCtx<'_, Msg>) {
        if !self.quarantined {
            return;
        }
        if let Some(pending) = self.quarantine_pending.get_mut(&suite) {
            pending.remove(&peer);
            if pending.is_empty() {
                self.quarantine_pending.remove(&suite);
            }
        }
        if self.quarantine_pending.is_empty() {
            self.quarantined = false;
            self.stats.requarantine_repairs += 1;
            if let Some(id) = self.quarantine_span.take() {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.end(id, ctx.now(), SpanOutcome::Ok);
                }
            }
            if let Some(t) = self.telemetry.as_mut() {
                t.mark_quarantined(self.site.0, false, ctx.now());
            }
            // Re-announce: a fresh gossip epoch resumes normal probing
            // (and the suppressed cache pushes).
            self.start_anti_entropy(ctx);
        }
    }

    /// Installs a peer-supplied configuration object when strictly newer
    /// than the durably held one, then re-bases the quarantine ledger for
    /// the suite on the new peer set: confirmations gathered under the old
    /// geometry may have come from sites that no longer represent the
    /// suite, and peers the reconfiguration added have not been absorbed
    /// at all.
    fn absorb_repair_config(&mut self, suite: ObjectId, version: Version, bytes: Bytes) {
        let object = config_object(suite);
        let held = self
            .container
            .read_version(object)
            .unwrap_or(Version::INITIAL);
        if version <= held {
            return;
        }
        let Some(cfg) = SuiteConfig::decode(&bytes) else {
            return;
        };
        if self.locks.exclusive_holder(object).is_some() {
            // An in-flight reconfiguration holds the object; whatever it
            // decides supersedes the pulled copy anyway.
            return;
        }
        let Ok(tx) = self.container.begin() else {
            return; // injected I/O error: the next probe round retries
        };
        self.container
            .stage_put(tx, object, version, bytes)
            .expect("stage repaired config");
        self.container.commit(tx).expect("commit repaired config");
        self.configs.insert(suite, cfg);
        if self.quarantined && self.quarantine_pending.contains_key(&suite) {
            let peers: BTreeSet<SiteId> = self.peers_of(suite).into_iter().collect();
            if peers.is_empty() {
                self.quarantine_pending.remove(&suite);
            } else {
                self.quarantine_pending.insert(suite, peers);
            }
        }
    }

    fn reload_config(&mut self, suite: ObjectId) {
        if let Ok(vv) = self.container.read(config_object(suite)) {
            if let Some(cfg) = SuiteConfig::decode(&vv.value) {
                self.configs.insert(suite, cfg);
            }
        }
    }

    /// Handles one protocol message. Exposed so composite nodes can
    /// delegate.
    pub fn handle(&mut self, from: SiteId, msg: Msg, ctx: &mut NodeCtx<'_, Msg>) {
        match msg {
            Msg::VersionReq { suite, req } => {
                // A quarantined replica's committed state may have
                // regressed; answering a version inquiry would let a
                // reader count its vote toward a quorum that misses a
                // decided write. Its votes are surrendered until repair.
                if self.quarantined {
                    ctx.send(
                        from,
                        Msg::Refused {
                            suite,
                            req,
                            reason: RefuseReason::Quarantined,
                        },
                    );
                    return;
                }
                // An exclusive holder has a superseding version staged;
                // answering with the committed one would let a reader
                // assemble a quorum that misses a decided write. Across a
                // reconfiguration that is fatal: the re-publication may be
                // in doubt at exactly the representative bridging the old
                // and new quorum geometries. Refuse, as ReadReq does — in
                // the paper, obtaining a version number and setting the
                // read lock are one step.
                if self.locks.exclusive_holder(data_object(suite)).is_some() {
                    self.stats.busy += 1;
                    ctx.send(from, Msg::Busy { suite, req });
                    return;
                }
                self.note_serving();
                self.stats.inquiries += 1;
                let version = self.data_version(suite);
                ctx.send(
                    from,
                    Msg::VersionResp {
                        suite,
                        req,
                        version,
                        generation: self.generation_of(suite),
                    },
                );
            }
            Msg::ReadReq { suite, req } => {
                if self.quarantined {
                    ctx.send(
                        from,
                        Msg::Refused {
                            suite,
                            req,
                            reason: RefuseReason::Quarantined,
                        },
                    );
                    return;
                }
                let object = data_object(suite);
                if self.locks.exclusive_holder(object).is_some() {
                    self.stats.busy += 1;
                    ctx.send(from, Msg::Busy { suite, req });
                    return;
                }
                self.note_serving();
                self.stats.reads += 1;
                let vv = self.container.read(object).expect("server container is up");
                ctx.send(
                    from,
                    Msg::ReadResp {
                        suite,
                        req,
                        version: vv.version,
                        value: vv.value,
                    },
                );
            }
            Msg::ConfigReq { suite, req } => {
                if let Some(cfg) = self.configs.get(&suite) {
                    ctx.send(
                        from,
                        Msg::ConfigResp {
                            suite,
                            req,
                            config: cfg.clone(),
                        },
                    );
                }
            }
            Msg::UpdateWeak {
                suite,
                version,
                value,
            } => {
                let object = data_object(suite);
                let committed = self
                    .container
                    .read_version(object)
                    .unwrap_or(Version::INITIAL);
                // Monotonic install: never regress the cache, and never
                // overwrite while a write transaction holds the object.
                if version > committed && self.locks.exclusive_holder(object).is_none() {
                    let Ok(tx) = self.container.begin() else {
                        // An injected I/O error dropped this
                        // fire-and-forget refresh; a later push retries.
                        return;
                    };
                    self.container
                        .stage_put(tx, object, version, value)
                        .expect("stage weak update");
                    self.container.commit(tx).expect("commit weak update");
                    self.stats.weak_updates += 1;
                }
            }
            Msg::Prepare {
                req,
                writes,
                lock_ts,
            } => {
                self.stats.prepares += 1;
                let suite = writes.first().map(|pw| pw.suite).unwrap_or(ObjectId(0));
                // A quarantined replica must not promise an install it may
                // not be able to keep durable; its vote is surrendered.
                if self.quarantined {
                    ctx.send(
                        from,
                        Msg::Refused {
                            suite,
                            req,
                            reason: RefuseReason::Quarantined,
                        },
                    );
                    return;
                }
                // An injected sync stall holds the WAL device: the prepare
                // record could not become durable in time, so refuse up
                // front rather than promise on a stuck disk. Reads keep
                // serving — committed state is intact.
                if self.stalled(ctx.now()) {
                    self.stats.disk_refusals += 1;
                    ctx.send(
                        from,
                        Msg::Refused {
                            suite,
                            req,
                            reason: RefuseReason::Disk,
                        },
                    );
                    return;
                }
                // Configuration staleness check per entry.
                for pw in &writes {
                    let my_gen = self.generation_of(pw.suite);
                    if pw.generation < my_gen {
                        self.stats.stale_config += 1;
                        ctx.send(
                            from,
                            Msg::StaleConfig {
                                suite: pw.suite,
                                req,
                                generation: my_gen,
                            },
                        );
                        return;
                    }
                }
                if self.pending.contains_key(&req) {
                    // Duplicate prepare (network duplication); re-vote yes.
                    self.note_serving();
                    self.stats.votes_yes += 1;
                    ctx.send(
                        from,
                        Msg::PrepareVote {
                            suite,
                            req,
                            vote: Vote::Yes,
                        },
                    );
                    return;
                }
                let token = TxToken::new(lock_ts, req.0);
                // Acquire every object's commit lock, all-or-nothing.
                // Single-object prepares may queue (the common case); a
                // batch that cannot take everything immediately votes no
                // rather than holding some locks while waiting on others.
                let single = writes.len() == 1;
                let mut all_granted = true;
                let mut queued = false;
                for pw in &writes {
                    match self.locks.lock(token, pw.object, LockMode::Exclusive) {
                        LockReply::Granted => {}
                        LockReply::Queued if single => {
                            queued = true;
                        }
                        LockReply::Queued | LockReply::Aborted => {
                            all_granted = false;
                            break;
                        }
                    }
                }
                let waiting = WaitingPrepare { from, req, writes };
                if queued {
                    if let Some(tr) = self.tracer.as_mut() {
                        let id = tr.start(
                            SpanKind::LockWait,
                            suite.0,
                            req.0,
                            None,
                            Some(from.0),
                            0,
                            ctx.now(),
                        );
                        self.waiting_spans.insert(token, id);
                    }
                    self.waiting.insert(token, waiting);
                    return;
                }
                if all_granted {
                    self.finish_prepare(waiting, token, ctx);
                } else {
                    for g in self.locks.release_all(token) {
                        self.resume_waiter(g.tx, ctx);
                    }
                    self.stats.votes_no += 1;
                    ctx.send(
                        from,
                        Msg::PrepareVote {
                            suite,
                            req,
                            vote: Vote::No,
                        },
                    );
                }
            }
            Msg::Commit { suite, req } => {
                if self.group_commit.is_some() {
                    // Both the apply and the ack wait for the sync so the
                    // Commit record is durable before the coordinator can
                    // forget the decision. Duplicates defer too; run_sync
                    // finds nothing pending and just re-acks.
                    self.defer(
                        Deferred::Commit {
                            to: from,
                            suite,
                            req,
                        },
                        ctx,
                    );
                    return;
                }
                self.apply_commit(req, ctx);
                // Idempotent ack either way: a duplicate commit means the
                // decision was commit.
                ctx.send(
                    from,
                    Msg::Ack {
                        suite,
                        req,
                        committed: true,
                    },
                );
            }
            Msg::Abort { suite, req } => {
                self.apply_abort(req, ctx);
                ctx.send(
                    from,
                    Msg::Ack {
                        suite,
                        req,
                        committed: false,
                    },
                );
            }
            Msg::RepairPull { suite, have, full } => {
                if !self.configs.contains_key(&suite) {
                    return;
                }
                // A quarantined replica must not seed peers: its committed
                // state is exactly what is under suspicion.
                if self.quarantined {
                    return;
                }
                // A full pull's answer is the puller's proof that this
                // peer's state is wholly absorbed — but a prepared,
                // undecided write on the suite means the committed answer
                // may be missing a version that in fact committed: the
                // quarantined puller itself may have applied that commit
                // before losing its log, and healing without it would let
                // the same version number commit twice. Stay silent; the
                // puller's next probe round retries after the doubt
                // resolves.
                if full && self.pending.values().any(|p| p.suite == suite) {
                    return;
                }
                let version = self.data_version(suite);
                // A `full` pull (a quarantined peer rebuilding) is always
                // answered — the answer itself is the puller's evidence it
                // absorbed this peer's state, even when nothing is newer.
                if full || version > have {
                    self.stats.repair_serves += 1;
                    // A full pull rebuilds a replica that may have lost
                    // everything, geometry included: ship the committed
                    // configuration object alongside the data so the
                    // puller rejoins under the current quorum assignment
                    // rather than whatever generation its seed manifest
                    // remembers.
                    let config = if full {
                        self.container
                            .read(config_object(suite))
                            .ok()
                            .map(|vv| (vv.version, vv.value))
                    } else {
                        None
                    };
                    ctx.send(
                        from,
                        Msg::RepairState {
                            suite,
                            version,
                            value: self.data_value(suite),
                            config,
                        },
                    );
                }
            }
            Msg::RepairState {
                suite,
                version,
                value,
                config,
            } => {
                if !self.configs.contains_key(&suite) {
                    return;
                }
                // Absorb the peer's configuration first: if this replica
                // rejoined on its seed manifest after losing the log, the
                // data below must be judged under the current geometry,
                // and the quarantine ledger must drain against the
                // current peer set, not the manifest's.
                if let Some((cfg_version, cfg_bytes)) = config {
                    self.absorb_repair_config(suite, cfg_version, cfg_bytes);
                }
                let object = data_object(suite);
                let committed = self
                    .container
                    .read_version(object)
                    .unwrap_or(Version::INITIAL);
                // Same monotonic rule as weak updates: only strictly newer
                // committed state, and never underneath a commit lock. The
                // sender only ships committed state, so repair can neither
                // resurrect an undecided write nor regress a version.
                let absorbed = if version > committed {
                    if self.locks.exclusive_holder(object).is_some() {
                        // An in-doubt transaction still holds the object;
                        // the next probe round pulls again.
                        false
                    } else if let Ok(tx) = self.container.begin() {
                        self.container
                            .stage_put(tx, object, version, value)
                            .expect("stage repair");
                        self.container.commit(tx).expect("commit repair");
                        self.stats.repairs_completed += 1;
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.event(
                                SpanKind::RepairInstall,
                                suite.0,
                                0,
                                None,
                                Some(from.0),
                                version.0,
                                ctx.now(),
                            );
                        }
                        if let Some(t) = self.telemetry.as_mut() {
                            t.note_repair(self.site.0, ctx.now());
                        }
                        true
                    } else {
                        // Injected I/O error: the peer's state was not
                        // absorbed, so it stays on the pending list.
                        false
                    }
                } else {
                    // Already at or past the peer's state.
                    true
                };
                if absorbed {
                    self.confirm_repair(suite, from, ctx);
                }
            }
            // Client-bound messages that a composite node may mis-route
            // here are ignored.
            _ => {}
        }
    }

    /// Timer callback: an anti-entropy tick (tagged tokens) or a probe of
    /// the coordinator about an unresolved prepared write.
    pub fn handle_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, Msg>) {
        if token & REPAIR_TIMER_TAG != 0 {
            // Stale epochs — ticks armed before a crash or a stop — die
            // here without rearming.
            if self.anti_entropy.is_some() && (token & !REPAIR_TIMER_TAG) == self.repair_epoch {
                self.run_repair_probe(ctx);
                let interval = self.anti_entropy.expect("checked above");
                ctx.set_timer(interval, token);
            }
            return;
        }
        if token & WAL_SYNC_TIMER_TAG != 0 {
            // A crash bumps `sync_epoch`, so a sync armed before it lands
            // here and dies without flushing post-recovery state early.
            if self.sync_active && (token & !WAL_SYNC_TIMER_TAG) == self.sync_epoch {
                self.run_sync(ctx);
            }
            return;
        }
        let req = ReqId(token);
        if let Some(p) = self.pending.get(&req) {
            self.stats.decision_probes += 1;
            ctx.send(
                req.coordinator(),
                Msg::DecisionReq {
                    suite: p.suite,
                    req,
                },
            );
            ctx.set_timer(self.resolve_after, token);
        }
    }

    /// Crash: volatile state is lost; the container keeps its durable log.
    pub fn handle_crash(&mut self) {
        self.container.crash();
        self.locks = ShardedLockManager::new(self.policy);
        self.pending.clear();
        self.waiting.clear();
        // Lock-wait spans of the cleared queue stay open in the record;
        // an open span at a crashed site is itself evidence.
        self.waiting_spans.clear();
        self.configs.clear();
        // Orphan any in-flight repair tick; recovery arms a fresh epoch.
        self.repair_epoch += 1;
        // Un-synced responses die with the crash: their records were
        // volatile (now truncated) and nothing was promised to anyone.
        self.sync_queue.clear();
        self.sync_active = false;
        self.sync_epoch += 1;
        // A stalled device does not survive the restart; quarantine state
        // does (it reflects durable damage, re-derived at recovery).
        self.stall_until = None;
    }

    /// Recovery: replay the log, restore configurations, re-lock in-doubt
    /// transactions, and ask coordinators for their decisions.
    pub fn handle_recover(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        let outcome = self.container.recover();
        self.stats.recoveries += 1;
        self.stats.torn_truncations += u64::from(outcome.torn_tail);
        self.stats.corrupt_records_detected += outcome.lost_records;
        self.stats.poison_escapes += u64::from(outcome.poison_escaped);
        if let Some(tr) = self.tracer.as_mut() {
            tr.event(
                SpanKind::DiskRecovery,
                0,
                0,
                None,
                None,
                outcome.replayed_records,
                ctx.now(),
            );
        }
        // Restore configuration cache from committed config objects.
        let config_suites: Vec<ObjectId> = self
            .container
            .objects()
            .filter_map(suite_of_config_object)
            .collect();
        for suite in config_suites {
            self.reload_config(suite);
        }
        // A hosted suite whose configuration object did not survive the
        // scan (corruption can truncate the log back past the bootstrap
        // records) falls back to the deployment manifest: without *some*
        // geometry the replica would not even know which peers to rebuild
        // from, and the quarantine below could never drain. The seed is
        // volatile state only — the healing full pulls install the peers'
        // current configuration durably, superseding it.
        let missing: Vec<SuiteConfig> = self
            .seed_configs
            .iter()
            .filter(|cfg| !self.configs.contains_key(&cfg.suite))
            .cloned()
            .collect();
        for cfg in missing {
            self.configs.insert(cfg.suite, cfg);
        }
        // Interior corruption (as opposed to a torn tail, which only loses
        // un-acknowledged records): acknowledged state may have regressed,
        // so surrender the replica's votes until a full anti-entropy sweep
        // has pulled state from every peer of every hosted suite. With no
        // repair daemon configured, the quarantine never heals — the
        // replica is as good as dead, which is the safe default.
        if outcome.corrupt_interior {
            if !self.quarantined {
                self.quarantined = true;
                self.stats.quarantines += 1;
                let hosted = self.hosted_suites().len() as u64;
                if let Some(tr) = self.tracer.as_mut() {
                    let id = tr.start(SpanKind::Quarantine, 0, 0, None, None, hosted, ctx.now());
                    self.quarantine_span = Some(id);
                }
                if let Some(t) = self.telemetry.as_mut() {
                    t.mark_quarantined(self.site.0, true, ctx.now());
                }
            }
            // (Re)build the confirmation ledger from scratch: anything
            // absorbed before this recovery is void, the damage is new.
            self.quarantine_pending = self
                .hosted_suites()
                .into_iter()
                .filter_map(|s| {
                    let peers: BTreeSet<SiteId> = self.peers_of(s).into_iter().collect();
                    (!peers.is_empty()).then_some((s, peers))
                })
                .collect();
        }
        // Re-arm in-doubt transactions: take back their locks and ask the
        // coordinators how things ended.
        for (tx, note) in self.container.in_doubt_notes() {
            let req = ReqId(note);
            let token = TxToken::new(req.0, req.0);
            let objects = self.container.staged_objects(tx);
            let Some(&object) = objects.first() else {
                continue;
            };
            for obj in &objects {
                // The lock table is empty at this point; grants are
                // unconditional.
                let reply = self.locks.lock(token, *obj, LockMode::Exclusive);
                debug_assert_eq!(reply, LockReply::Granted);
            }
            let suite = suite_of_config_object(object).unwrap_or(object);
            self.pending.insert(
                req,
                PendingWrite {
                    tx,
                    token,
                    objects,
                    suite,
                },
            );
            self.stats.decision_probes += 1;
            ctx.send(req.coordinator(), Msg::DecisionReq { suite, req });
            ctx.set_timer(self.resolve_after, req.0);
        }
        // Catch up and restart the repair daemon: the recovering
        // representative pulls from every peer immediately (restoring its
        // vote's usefulness without waiting for a client write), then
        // resumes periodic gossip.
        if self.anti_entropy.is_some() {
            self.pull_from_all_peers(ctx);
            self.start_anti_entropy(ctx);
        }
    }
}

impl Node for SuiteServer {
    type Msg = Msg;

    fn on_message(&mut self, from: SiteId, msg: Msg, ctx: &mut NodeCtx<'_, Msg>) {
        self.handle(from, msg, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, Msg>) {
        self.handle_timer(token, ctx);
    }

    fn on_crash(&mut self) {
        self.handle_crash();
    }

    fn on_recover(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        self.handle_recover(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::QuorumSpec;
    use crate::votes::VoteAssignment;
    use wv_sim::{DetRng, SimTime};

    fn test_config() -> SuiteConfig {
        SuiteConfig::new(
            ObjectId(1),
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 2),
        )
        .expect("legal")
    }

    fn server() -> SuiteServer {
        SuiteServer::new(SiteId(0), vec![test_config()], DeadlockPolicy::WaitDie)
    }

    fn ctx_pair(rng: &mut DetRng) -> NodeCtx<'_, Msg> {
        NodeCtx::new(SimTime::ZERO, SiteId(0), rng)
    }

    fn sent(ctx: &mut NodeCtx<'_, Msg>) -> Vec<(SiteId, Msg)> {
        ctx.take_effects()
            .into_iter()
            .filter_map(|e| match e {
                wv_net::node::Effect::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    const CLIENT: SiteId = SiteId(9);
    const SUITE: ObjectId = ObjectId(1);

    fn req(n: u64) -> ReqId {
        ReqId::new(n, CLIENT)
    }

    fn prepare_msg(r: ReqId, version: u64, value: &'static [u8]) -> Msg {
        Msg::Prepare {
            req: r,
            writes: vec![PrepareWrite {
                suite: SUITE,
                object: data_object(SUITE),
                version: Version(version),
                value: Bytes::from_static(value),
                generation: 1,
            }],
            lock_ts: r.0,
        }
    }

    #[test]
    fn version_inquiry_answers_initial_state() {
        let mut s = server();
        let mut rng = DetRng::new(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::VersionReq {
                suite: SUITE,
                req: req(1),
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0].1,
            Msg::VersionResp { version, generation, .. }
                if *version == Version(0) && *generation == 1
        ));
        assert_eq!(s.stats.inquiries, 1);
    }

    #[test]
    fn prepare_commit_installs_new_version() {
        let mut s = server();
        let mut rng = DetRng::new(2);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"new"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::PrepareVote {
                vote: Vote::Yes,
                ..
            }
        ));
        // Not yet visible.
        assert_eq!(s.data_version(SUITE), Version(0));
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: r,
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::Ack {
                committed: true,
                ..
            }
        ));
        assert_eq!(s.data_version(SUITE), Version(1));
        assert_eq!(s.data_value(SUITE), Bytes::from_static(b"new"));
        assert_eq!(s.pending_writes(), 0);
    }

    #[test]
    fn stale_version_prepare_votes_no() {
        let mut s = server();
        let mut rng = DetRng::new(3);
        let r1 = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r1, 1, b"a"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: r1,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        // A second writer that still thinks the version is 0 prepares v1.
        let r2 = req(2);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r2, 1, b"b"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(&out[0].1, Msg::PrepareVote { vote: Vote::No, .. }));
        assert_eq!(s.data_value(SUITE), Bytes::from_static(b"a"));
    }

    #[test]
    fn reads_are_turned_away_while_commit_locked() {
        let mut s = server();
        let mut rng = DetRng::new(4);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"x"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::ReadReq {
                suite: SUITE,
                req: req(2),
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(&out[0].1, Msg::Busy { .. }));
        assert_eq!(s.stats.busy, 1);
        // Version inquiries are turned away too: the committed version is
        // about to be superseded, and serving it would let a reader build
        // a quorum that misses the staged write (fatal across a
        // reconfiguration, where quorum geometry changes underneath it).
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::VersionReq {
                suite: SUITE,
                req: req(3),
            },
            &mut ctx,
        );
        assert!(matches!(&sent(&mut ctx)[0].1, Msg::Busy { .. }));
        assert_eq!(s.stats.busy, 2);
        // After abort the read proceeds.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Abort {
                suite: SUITE,
                req: r,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::ReadReq {
                suite: SUITE,
                req: req(4),
            },
            &mut ctx,
        );
        assert!(matches!(&sent(&mut ctx)[0].1, Msg::ReadResp { .. }));
    }

    #[test]
    fn conflicting_prepare_from_younger_writer_votes_no() {
        let mut s = server();
        let mut rng = DetRng::new(5);
        let older = req(1);
        let younger = req(2);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(older, 1, b"old"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(younger, 1, b"young"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(&out[0].1, Msg::PrepareVote { vote: Vote::No, .. }));
    }

    #[test]
    fn older_writer_queues_and_resumes_after_commit() {
        let mut s = server();
        let mut rng = DetRng::new(6);
        let younger = req(5);
        let older = req(1); // smaller counter = older
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(younger, 1, b"young"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(older, 1, b"old"), &mut ctx);
        // Older waits: no vote yet.
        assert!(sent(&mut ctx).is_empty());
        // Commit the younger one; the older resumes, but its version is now
        // stale, so it votes no.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: younger,
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert_eq!(out.len(), 2, "ack plus resumed vote");
        assert!(
            matches!(&out[0].1, Msg::PrepareVote { vote: Vote::No, req, .. } if *req == older)
                || matches!(&out[1].1, Msg::PrepareVote { vote: Vote::No, req, .. } if *req == older)
        );
    }

    #[test]
    fn older_writer_resumes_with_yes_after_abort() {
        let mut s = server();
        let mut rng = DetRng::new(7);
        let younger = req(5);
        let older = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(younger, 1, b"young"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(older, 1, b"old"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Abort {
                suite: SUITE,
                req: younger,
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(out.iter().any(|(_, m)| matches!(
            m,
            Msg::PrepareVote { vote: Vote::Yes, req, .. } if *req == older
        )));
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: older,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        assert_eq!(s.data_value(SUITE), Bytes::from_static(b"old"));
    }

    #[test]
    fn weak_update_is_monotonic() {
        let mut s = server();
        let mut rng = DetRng::new(8);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::UpdateWeak {
                suite: SUITE,
                version: Version(3),
                value: Bytes::from_static(b"v3"),
            },
            &mut ctx,
        );
        assert_eq!(s.data_version(SUITE), Version(3));
        // A stale update must not regress.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::UpdateWeak {
                suite: SUITE,
                version: Version(2),
                value: Bytes::from_static(b"v2"),
            },
            &mut ctx,
        );
        assert_eq!(s.data_version(SUITE), Version(3));
        assert_eq!(s.data_value(SUITE), Bytes::from_static(b"v3"));
        assert_eq!(s.stats.weak_updates, 1);
    }

    #[test]
    fn stale_generation_prepare_is_rejected() {
        let mut s = server();
        // Install generation 2 directly.
        let cfg2 = s
            .config(SUITE)
            .expect("configured")
            .evolve(
                VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
                QuorumSpec::new(1, 3),
            )
            .expect("legal");
        let mut rng = DetRng::new(9);
        let r0 = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Prepare {
                req: r0,
                writes: vec![PrepareWrite {
                    suite: SUITE,
                    object: config_object(SUITE),
                    version: Version(cfg2.generation),
                    value: Bytes::from(cfg2.encode()),
                    generation: 1,
                }],
                lock_ts: r0.0,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: r0,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        assert_eq!(s.config(SUITE).expect("cfg").generation, 2);
        // A write still claiming generation 1 is now rejected.
        let r1 = req(2);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r1, 1, b"late"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(&out[0].1, Msg::StaleConfig { generation: 2, .. }));
        assert_eq!(s.stats.stale_config, 1);
    }

    #[test]
    fn config_req_returns_current_config() {
        let mut s = server();
        let mut rng = DetRng::new(10);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::ConfigReq {
                suite: SUITE,
                req: req(1),
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::ConfigResp { config, .. } if config.generation == 1
        ));
    }

    #[test]
    fn crash_during_prepare_recovers_in_doubt_and_probes_coordinator() {
        let mut s = server();
        let mut rng = DetRng::new(11);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"promise"), &mut ctx);
        let _ = sent(&mut ctx);
        s.handle_crash();
        let mut ctx = ctx_pair(&mut rng);
        s.handle_recover(&mut ctx);
        let out = sent(&mut ctx);
        // The server asks the coordinator (CLIENT, from the req id).
        assert!(matches!(&out[0].1, Msg::DecisionReq { req: rr, .. } if *rr == r));
        assert_eq!(out[0].0, CLIENT);
        assert_eq!(s.pending_writes(), 1);
        // Config cache was rebuilt from the container.
        assert_eq!(s.config(SUITE).expect("cfg").generation, 1);
        // The coordinator answers commit; the write lands.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: r,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        assert_eq!(s.data_value(SUITE), Bytes::from_static(b"promise"));
    }

    #[test]
    fn crash_before_prepare_loses_staged_write() {
        let mut s = server();
        let mut rng = DetRng::new(12);
        // Simulate an active (unprepared) transaction by crashing right
        // after the initial config commit: nothing in doubt.
        s.handle_crash();
        let mut ctx = ctx_pair(&mut rng);
        s.handle_recover(&mut ctx);
        assert!(sent(&mut ctx).is_empty());
        assert_eq!(s.pending_writes(), 0);
        assert_eq!(s.data_version(SUITE), Version(0));
    }

    #[test]
    fn duplicate_prepare_revotes_yes() {
        let mut s = server();
        let mut rng = DetRng::new(13);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"x"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"x"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::PrepareVote {
                vote: Vote::Yes,
                ..
            }
        ));
        assert_eq!(s.pending_writes(), 1, "no duplicate pending entry");
    }

    #[test]
    fn abort_of_unknown_req_still_acks() {
        let mut s = server();
        let mut rng = DetRng::new(14);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Abort {
                suite: SUITE,
                req: req(42),
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::Ack {
                committed: false,
                ..
            }
        ));
    }

    #[test]
    fn log_stays_bounded_under_sustained_writes() {
        let mut s = server();
        s.set_checkpoint_threshold(20);
        let mut rng = DetRng::new(21);
        for i in 1..=60u64 {
            let r = req(i);
            let mut ctx = ctx_pair(&mut rng);
            s.handle(
                CLIENT,
                Msg::Prepare {
                    req: r,
                    writes: vec![PrepareWrite {
                        suite: SUITE,
                        object: data_object(SUITE),
                        version: Version(i),
                        value: Bytes::from(format!("v{i}")),
                        generation: 1,
                    }],
                    lock_ts: r.0,
                },
                &mut ctx,
            );
            let _ = sent(&mut ctx);
            let mut ctx = ctx_pair(&mut rng);
            s.handle(
                CLIENT,
                Msg::Commit {
                    suite: SUITE,
                    req: r,
                },
                &mut ctx,
            );
            let _ = sent(&mut ctx);
        }
        assert!(
            s.stats.checkpoints >= 2,
            "compactions ran: {}",
            s.stats.checkpoints
        );
        assert!(
            s.container().wal().len() <= 24,
            "log unbounded: {} records",
            s.container().wal().len()
        );
        // Data still correct after a crash + recovery from the compact log.
        assert_eq!(s.data_version(SUITE), Version(60));
        s.handle_crash();
        let mut ctx = ctx_pair(&mut rng);
        s.handle_recover(&mut ctx);
        assert_eq!(s.data_version(SUITE), Version(60));
        assert_eq!(s.data_value(SUITE), Bytes::from_static(b"v60"));
    }

    #[test]
    fn decision_probe_timer_repeats_until_resolved() {
        let mut s = server();
        s.set_resolve_after(SimDuration::from_millis(100));
        let mut rng = DetRng::new(15);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"x"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle_timer(r.0, &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(&out[0].1, Msg::DecisionReq { .. }));
        // After resolution the timer goes quiet.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: r,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle_timer(r.0, &mut ctx);
        assert!(sent(&mut ctx).is_empty());
    }

    /// Installs `version`/`value` as committed state (simulating past
    /// writes this representative participated in).
    fn install(s: &mut SuiteServer, version: u64, value: &'static [u8]) {
        let tx = s.container.begin().expect("up");
        s.container
            .stage_put(
                tx,
                data_object(SUITE),
                Version(version),
                Bytes::from_static(value),
            )
            .expect("stage");
        s.container.commit(tx).expect("commit");
    }

    #[test]
    fn repair_pull_answers_only_stale_peers() {
        let mut s = server();
        install(&mut s, 3, b"v3");
        let mut rng = DetRng::new(30);
        // A peer already at v3 gets silence.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            SiteId(1),
            Msg::RepairPull {
                suite: SUITE,
                have: Version(3),
                full: false,
            },
            &mut ctx,
        );
        assert!(sent(&mut ctx).is_empty());
        // A stale peer gets the committed state.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            SiteId(1),
            Msg::RepairPull {
                suite: SUITE,
                have: Version(1),
                full: false,
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(1));
        assert!(matches!(
            &out[0].1,
            Msg::RepairState { version, value, .. }
                if *version == Version(3) && value == &Bytes::from_static(b"v3")
        ));
        assert_eq!(s.stats.repair_serves, 1);
    }

    #[test]
    fn repair_state_installs_monotonically() {
        let mut s = server();
        install(&mut s, 2, b"v2");
        let mut rng = DetRng::new(31);
        // Newer state installs.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            SiteId(1),
            Msg::RepairState {
                suite: SUITE,
                version: Version(5),
                value: Bytes::from_static(b"v5"),
                config: None,
            },
            &mut ctx,
        );
        assert_eq!(s.data_version(SUITE), Version(5));
        assert_eq!(s.stats.repairs_completed, 1);
        // Older or equal state never regresses the copy.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            SiteId(2),
            Msg::RepairState {
                suite: SUITE,
                version: Version(4),
                value: Bytes::from_static(b"v4"),
                config: None,
            },
            &mut ctx,
        );
        assert_eq!(s.data_version(SUITE), Version(5));
        assert_eq!(s.data_value(SUITE), Bytes::from_static(b"v5"));
        assert_eq!(s.stats.repairs_completed, 1);
    }

    #[test]
    fn repair_state_defers_to_an_inflight_commit_lock() {
        let mut s = server();
        let mut rng = DetRng::new(32);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"staged"), &mut ctx);
        let _ = sent(&mut ctx);
        // While the prepare holds the commit lock, repair stands aside
        // (the next gossip round will retry).
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            SiteId(1),
            Msg::RepairState {
                suite: SUITE,
                version: Version(7),
                value: Bytes::from_static(b"v7"),
                config: None,
            },
            &mut ctx,
        );
        assert_eq!(s.data_version(SUITE), Version(0));
        assert_eq!(s.stats.repairs_completed, 0);
    }

    #[test]
    fn repair_timer_probes_round_robin_and_rearms() {
        let mut s = server();
        s.set_anti_entropy(SimDuration::from_millis(200));
        let mut rng = DetRng::new(33);
        let mut ctx = ctx_pair(&mut rng);
        s.start_anti_entropy(&mut ctx);
        let _ = ctx.take_effects();
        let token = REPAIR_TIMER_TAG | 1;
        let mut targets = Vec::new();
        for _ in 0..4 {
            let mut ctx = ctx_pair(&mut rng);
            s.handle_timer(token, &mut ctx);
            let out = sent(&mut ctx);
            assert_eq!(out.len(), 1, "one pull per hosted suite per tick");
            assert!(matches!(&out[0].1, Msg::RepairPull { .. }));
            targets.push(out[0].0);
        }
        // Site 0 hosts the suite with peers {1, 2}: ticks alternate.
        assert_eq!(
            targets,
            vec![SiteId(1), SiteId(2), SiteId(1), SiteId(2)],
            "round-robin over peers"
        );
        assert_eq!(s.stats.repair_probes, 4);
    }

    #[test]
    fn crash_orphans_repair_ticks_and_recovery_pulls_from_all_peers() {
        let mut s = server();
        s.set_anti_entropy(SimDuration::from_millis(200));
        let mut rng = DetRng::new(34);
        let mut ctx = ctx_pair(&mut rng);
        s.start_anti_entropy(&mut ctx);
        let _ = ctx.take_effects();
        let stale_token = REPAIR_TIMER_TAG | 1;
        s.handle_crash();
        // The pre-crash tick fires into the new epoch and dies.
        let mut ctx = ctx_pair(&mut rng);
        s.handle_timer(stale_token, &mut ctx);
        assert!(sent(&mut ctx).is_empty());
        // Recovery pulls from every peer and rearms a fresh epoch.
        let mut ctx = ctx_pair(&mut rng);
        s.handle_recover(&mut ctx);
        let out = sent(&mut ctx);
        let pulls: Vec<SiteId> = out
            .iter()
            .filter(|(_, m)| matches!(m, Msg::RepairPull { .. }))
            .map(|(to, _)| *to)
            .collect();
        assert_eq!(pulls, vec![SiteId(1), SiteId(2)], "fan-out to all peers");
    }

    #[test]
    fn stop_anti_entropy_silences_future_ticks() {
        let mut s = server();
        s.set_anti_entropy(SimDuration::from_millis(200));
        let mut rng = DetRng::new(35);
        let mut ctx = ctx_pair(&mut rng);
        s.start_anti_entropy(&mut ctx);
        let _ = ctx.take_effects();
        s.stop_anti_entropy();
        let mut ctx = ctx_pair(&mut rng);
        s.handle_timer(REPAIR_TIMER_TAG | 1, &mut ctx);
        assert!(sent(&mut ctx).is_empty());
        assert!(!s.anti_entropy_enabled());
    }

    fn gc_server() -> SuiteServer {
        let mut s = server();
        s.set_group_commit(SimDuration::from_millis(5));
        s
    }

    /// Fires the sync timer for the server's current epoch.
    fn fire_sync(s: &mut SuiteServer, rng: &mut DetRng) -> Vec<(SiteId, Msg)> {
        let token = WAL_SYNC_TIMER_TAG | s.sync_epoch;
        let mut ctx = ctx_pair(rng);
        s.handle_timer(token, &mut ctx);
        sent(&mut ctx)
    }

    #[test]
    fn group_commit_defers_vote_and_ack_until_sync() {
        let mut s = gc_server();
        let base = s.container.wal().flushes();
        let mut rng = DetRng::new(40);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"new"), &mut ctx);
        assert!(sent(&mut ctx).is_empty(), "vote waits for the sync");
        assert_eq!(s.container.wal().flushes(), base, "record still volatile");
        let out = fire_sync(&mut s, &mut rng);
        assert!(matches!(
            &out[0].1,
            Msg::PrepareVote {
                vote: Vote::Yes,
                ..
            }
        ));
        assert_eq!(s.container.wal().flushes(), base + 1);
        // The commit decision defers the same way.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: r,
            },
            &mut ctx,
        );
        assert!(sent(&mut ctx).is_empty(), "ack waits for the sync");
        assert_eq!(s.data_version(SUITE), Version(0), "apply waits too");
        let out = fire_sync(&mut s, &mut rng);
        assert!(matches!(
            &out[0].1,
            Msg::Ack {
                committed: true,
                ..
            }
        ));
        assert_eq!(s.data_version(SUITE), Version(1));
        assert_eq!(s.container.wal().flushes(), base + 2);
        assert_eq!(s.stats.wal_batches, 2);
        assert_eq!(s.stats.wal_batched_records, 2);
        // Two single-suite batches: one distinct suite each.
        assert_eq!(s.stats.wal_batch_suites, 2);
        assert_eq!(s.stats.commits, 1);
        let h = s.metrics().histogram("wal_batch_size").expect("recorded");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn batched_prepares_ride_one_flush() {
        // Two suites so the prepares do not contend on one data object.
        let cfg2 = SuiteConfig::new(
            ObjectId(2),
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 2),
        )
        .expect("legal");
        let mut s = SuiteServer::new(
            SiteId(0),
            vec![test_config(), cfg2],
            DeadlockPolicy::WaitDie,
        );
        s.set_group_commit(SimDuration::from_millis(5));
        let base = s.container.wal().flushes();
        let mut rng = DetRng::new(41);
        for (n, suite) in [(1, ObjectId(1)), (2, ObjectId(2))] {
            let r = req(n);
            let mut ctx = ctx_pair(&mut rng);
            s.handle(
                CLIENT,
                Msg::Prepare {
                    req: r,
                    writes: vec![PrepareWrite {
                        suite,
                        object: data_object(suite),
                        version: Version(1),
                        value: Bytes::from_static(b"v"),
                        generation: 1,
                    }],
                    lock_ts: r.0,
                },
                &mut ctx,
            );
            assert!(sent(&mut ctx).is_empty());
        }
        let out = fire_sync(&mut s, &mut rng);
        assert_eq!(out.len(), 2, "both votes leave together");
        assert!(out.iter().all(|(_, m)| matches!(
            m,
            Msg::PrepareVote {
                vote: Vote::Yes,
                ..
            }
        )));
        assert_eq!(s.container.wal().flushes(), base + 1, "one durable write");
        assert_eq!(s.stats.wal_batches, 1);
        assert_eq!(s.stats.wal_batched_records, 2);
        // The single flush absorbed writes to two distinct suites.
        assert_eq!(s.stats.wal_batch_suites, 2);
        let h = s.metrics().histogram("wal_batch_suites").expect("recorded");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn reads_stay_busy_while_commit_awaits_sync() {
        let mut s = gc_server();
        let mut rng = DetRng::new(42);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"x"), &mut ctx);
        let _ = sent(&mut ctx);
        let _ = fire_sync(&mut s, &mut rng);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Commit {
                suite: SUITE,
                req: r,
            },
            &mut ctx,
        );
        let _ = sent(&mut ctx);
        // The commit is applied only at sync time and holds its lock until
        // then, so no reader can observe un-durable state.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::ReadReq {
                suite: SUITE,
                req: req(2),
            },
            &mut ctx,
        );
        assert!(matches!(&sent(&mut ctx)[0].1, Msg::Busy { .. }));
        let _ = fire_sync(&mut s, &mut rng);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::ReadReq {
                suite: SUITE,
                req: req(3),
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::ReadResp { version, .. } if *version == Version(1)
        ));
    }

    #[test]
    fn abort_purges_deferred_vote() {
        let mut s = gc_server();
        let mut rng = DetRng::new(43);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"x"), &mut ctx);
        let _ = sent(&mut ctx);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::Abort {
                suite: SUITE,
                req: r,
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::Ack {
                committed: false,
                ..
            }
        ));
        assert_eq!(s.pending_writes(), 0);
        // The sync fires on an emptied queue: no late yes vote escapes.
        let out = fire_sync(&mut s, &mut rng);
        assert!(out.is_empty());
        assert_eq!(s.stats.wal_batches, 0, "empty batches are not counted");
    }

    #[test]
    fn crash_during_sync_window_loses_nothing_promised() {
        let mut s = gc_server();
        let mut rng = DetRng::new(44);
        let base = s.container.wal().flushes();
        let r = req(1);
        let stale_token = WAL_SYNC_TIMER_TAG | s.sync_epoch;
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"x"), &mut ctx);
        assert!(sent(&mut ctx).is_empty(), "nothing was promised");
        s.handle_crash();
        let mut ctx = ctx_pair(&mut rng);
        s.handle_recover(&mut ctx);
        let _ = sent(&mut ctx);
        // The volatile prepare record died with the crash: nothing is in
        // doubt, and the pre-crash sync timer lands in a dead epoch.
        assert_eq!(s.pending_writes(), 0);
        let mut ctx = ctx_pair(&mut rng);
        s.handle_timer(stale_token, &mut ctx);
        assert!(sent(&mut ctx).is_empty());
        assert_eq!(s.container.wal().flushes(), base);
        assert_eq!(s.data_version(SUITE), Version(0));
        // The server is fully live on a fresh epoch.
        let r2 = req(2);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r2, 1, b"y"), &mut ctx);
        assert!(sent(&mut ctx).is_empty());
        let out = fire_sync(&mut s, &mut rng);
        assert!(matches!(
            &out[0].1,
            Msg::PrepareVote {
                vote: Vote::Yes,
                ..
            }
        ));
    }

    // ---- disk faults and quarantine ----

    fn ctx_at(now: SimTime, rng: &mut DetRng) -> NodeCtx<'_, Msg> {
        NodeCtx::new(now, SiteId(0), rng)
    }

    /// Builds a server with committed history, arms one bit flip with the
    /// given seed, and crash-recovers it. Returns the server.
    fn corrupted_server(seed: u64) -> SuiteServer {
        let mut s = server();
        s.set_anti_entropy(SimDuration::from_secs(1));
        for v in 1..=5 {
            install(&mut s, v, b"payload");
        }
        s.set_disk_fault_seed(seed);
        s.arm_bit_flip();
        s.handle_crash();
        let mut rng = DetRng::new(seed);
        let mut ctx = ctx_pair(&mut rng);
        s.handle_recover(&mut ctx);
        s
    }

    /// A seed whose bit flip lands in a data record, so the config object
    /// survives and the quarantine can heal through data pulls.
    fn quarantined_server() -> SuiteServer {
        for seed in 0..64 {
            let s = corrupted_server(seed);
            if s.is_quarantined() && s.config(SUITE).is_some() {
                return s;
            }
        }
        panic!("no seed in 0..64 corrupted a data record past the config");
    }

    #[test]
    fn interior_corruption_quarantines_and_refuses_everything() {
        let mut s = quarantined_server();
        assert_eq!(s.stats.quarantines, 1);
        assert!(s.stats.corrupt_records_detected > 0);
        assert_eq!(s.stats.poison_escapes, 0);
        let mut rng = DetRng::new(50);
        for msg in [
            Msg::VersionReq {
                suite: SUITE,
                req: req(1),
            },
            Msg::ReadReq {
                suite: SUITE,
                req: req(2),
            },
            prepare_msg(req(3), 9, b"w"),
        ] {
            let mut ctx = ctx_pair(&mut rng);
            s.handle(CLIENT, msg, &mut ctx);
            let out = sent(&mut ctx);
            assert_eq!(out.len(), 1);
            assert!(
                matches!(
                    &out[0].1,
                    Msg::Refused {
                        reason: RefuseReason::Quarantined,
                        ..
                    }
                ),
                "quarantined server must refuse, got {:?}",
                out[0].1
            );
        }
        assert_eq!(s.stats.served_while_quarantined, 0);
    }

    #[test]
    fn quarantined_recovery_pulls_full_state_from_every_peer() {
        for seed in 0..64 {
            let mut s = server();
            s.set_anti_entropy(SimDuration::from_secs(1));
            for v in 1..=5 {
                install(&mut s, v, b"payload");
            }
            s.set_disk_fault_seed(seed);
            s.arm_bit_flip();
            s.handle_crash();
            let mut rng = DetRng::new(seed);
            let mut ctx = ctx_pair(&mut rng);
            s.handle_recover(&mut ctx);
            if !(s.is_quarantined() && s.config(SUITE).is_some()) {
                continue;
            }
            let pulls: Vec<_> = sent(&mut ctx)
                .into_iter()
                .filter(|(_, m)| matches!(m, Msg::RepairPull { full: true, .. }))
                .collect();
            assert_eq!(pulls.len(), 2, "one full pull per peer");
            return;
        }
        panic!("no seed in 0..64 produced a healable quarantine");
    }

    #[test]
    fn quarantine_heals_only_after_every_peer_confirms() {
        let mut s = quarantined_server();
        let mut rng = DetRng::new(51);
        let state = |v: u64| Msg::RepairState {
            suite: SUITE,
            version: Version(v),
            value: Bytes::from_static(b"repair"),
            config: None,
        };
        // First peer's answer installs but does not heal.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(SiteId(1), state(9), &mut ctx);
        let _ = sent(&mut ctx);
        assert!(s.is_quarantined(), "one of two peers is not enough");
        assert_eq!(s.data_version(SUITE), Version(9));
        // A quarantined replica never seeds peers, even when asked.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            SiteId(2),
            Msg::RepairPull {
                suite: SUITE,
                have: Version(0),
                full: false,
            },
            &mut ctx,
        );
        assert!(sent(&mut ctx).is_empty(), "suspect state must not spread");
        // The second peer holds nothing newer; its answer still counts —
        // it proves this replica is at or past that peer's state.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(SiteId(2), state(9), &mut ctx);
        let _ = sent(&mut ctx);
        assert!(!s.is_quarantined(), "full sweep completed");
        assert_eq!(s.stats.requarantine_repairs, 1);
        // Votes are live again.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::VersionReq {
                suite: SUITE,
                req: req(1),
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(&out[0].1, Msg::VersionResp { version, .. } if *version == Version(9)));
        assert_eq!(s.stats.served_while_quarantined, 0);
    }

    #[test]
    fn torn_tail_truncates_without_quarantine() {
        let mut s = gc_server();
        s.set_disk_fault_seed(7);
        let mut rng = DetRng::new(52);
        let r = req(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(r, 1, b"volatile"), &mut ctx);
        assert!(sent(&mut ctx).is_empty(), "vote deferred behind the sync");
        s.arm_torn_write();
        s.handle_crash();
        let mut ctx = ctx_pair(&mut rng);
        s.handle_recover(&mut ctx);
        let _ = sent(&mut ctx);
        // A tear only shortens the un-acknowledged volatile tail: normal
        // crash wear, not corruption. The replica keeps its votes.
        assert!(!s.is_quarantined());
        assert_eq!(s.stats.torn_truncations, 1);
        assert_eq!(s.stats.corrupt_records_detected, 0);
        assert_eq!(s.data_version(SUITE), Version(0));
    }

    #[test]
    fn stalled_disk_refuses_prepares_but_keeps_serving_reads() {
        let mut s = server();
        let mut rng = DetRng::new(53);
        install(&mut s, 1, b"v1");
        s.disk_stall(SimDuration::from_secs(5), SimTime::ZERO);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(req(1), 2, b"w"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::Refused {
                reason: RefuseReason::Disk,
                ..
            }
        ));
        assert_eq!(s.stats.disk_refusals, 1);
        // Committed state is intact; reads keep flowing.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(
            CLIENT,
            Msg::ReadReq {
                suite: SUITE,
                req: req(2),
            },
            &mut ctx,
        );
        let out = sent(&mut ctx);
        assert!(matches!(&out[0].1, Msg::ReadResp { .. }));
        // Past the deadline the device is healthy again.
        let later = SimTime::ZERO + SimDuration::from_secs(6);
        let mut ctx = ctx_at(later, &mut rng);
        s.handle(CLIENT, prepare_msg(req(3), 2, b"w"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::PrepareVote {
                vote: Vote::Yes,
                ..
            }
        ));
    }

    #[test]
    fn io_error_refuses_the_prepare_and_releases_its_locks() {
        let mut s = server();
        let mut rng = DetRng::new(54);
        s.inject_io_errors(1);
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(req(1), 1, b"w"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::Refused {
                reason: RefuseReason::Disk,
                ..
            }
        ));
        assert_eq!(s.stats.disk_refusals, 1);
        assert_eq!(s.pending_writes(), 0);
        // The lock was released: a retry (fresh error-free disk) succeeds.
        let mut ctx = ctx_pair(&mut rng);
        s.handle(CLIENT, prepare_msg(req(2), 1, b"w"), &mut ctx);
        let out = sent(&mut ctx);
        assert!(matches!(
            &out[0].1,
            Msg::PrepareVote {
                vote: Vote::Yes,
                ..
            }
        ));
    }

    /// Satellite regression: a torn tail can retroactively persist a
    /// complete-but-unsynced prepare (the vote never left). Recovery
    /// surfaces it as in doubt and the decision probe resolves it.
    #[test]
    fn decision_probe_resolves_in_doubt_surfaced_by_torn_tail() {
        let cfg2 = SuiteConfig::new(
            ObjectId(2),
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 2),
        )
        .expect("legal");
        let suite2 = ObjectId(2);
        for seed in 0..64u64 {
            let mut s = SuiteServer::new(
                SiteId(0),
                vec![test_config(), cfg2.clone()],
                DeadlockPolicy::WaitDie,
            );
            s.set_group_commit(SimDuration::from_millis(5));
            s.set_disk_fault_seed(seed);
            let mut rng = DetRng::new(seed);
            let r1 = req(1);
            let mut ctx = ctx_pair(&mut rng);
            s.handle(CLIENT, prepare_msg(r1, 1, b"first"), &mut ctx);
            assert!(sent(&mut ctx).is_empty(), "vote rides the sync");
            // A second volatile prepare (other suite) extends the tail so
            // the tear can land beyond the first prepare's frames.
            let r2 = req(2);
            let mut ctx = ctx_pair(&mut rng);
            s.handle(
                CLIENT,
                Msg::Prepare {
                    req: r2,
                    writes: vec![PrepareWrite {
                        suite: suite2,
                        object: data_object(suite2),
                        version: Version(1),
                        value: Bytes::from_static(b"second"),
                        generation: 1,
                    }],
                    lock_ts: r2.0,
                },
                &mut ctx,
            );
            assert!(sent(&mut ctx).is_empty());
            s.arm_torn_write();
            s.handle_crash();
            let mut ctx = ctx_pair(&mut rng);
            s.handle_recover(&mut ctx);
            let out = sent(&mut ctx);
            // Hunt for a tear that kept exactly the first prepare.
            if s.pending_writes() != 1 {
                continue;
            }
            assert!(!s.is_quarantined(), "a tear is wear, not corruption");
            assert_eq!(s.stats.torn_truncations, 1);
            let probes: Vec<_> = out
                .iter()
                .filter(|(to, m)| {
                    *to == CLIENT && matches!(m, Msg::DecisionReq { req, .. } if *req == r1)
                })
                .collect();
            assert_eq!(probes.len(), 1, "one probe for the surfaced tx");
            // The coordinator answers commit; the decision rides the next
            // group-commit sync and the write lands after all.
            let mut ctx = ctx_pair(&mut rng);
            s.handle(
                CLIENT,
                Msg::Commit {
                    suite: SUITE,
                    req: r1,
                },
                &mut ctx,
            );
            let _ = sent(&mut ctx);
            let _ = fire_sync(&mut s, &mut rng);
            assert_eq!(s.data_value(SUITE), Bytes::from_static(b"first"));
            assert_eq!(s.data_version(suite2), Version(0), "torn tx died");
            return;
        }
        panic!("no seed in 0..64 tore between the two prepares");
    }
}
