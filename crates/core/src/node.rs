//! The combined per-site node.
//!
//! The paper's workstations host a weak representative *and* the
//! application using the suite; file servers host strong representatives.
//! [`SystemNode`] composes [`SuiteServer`] and [`ClientNode`] so a site can
//! play either or both roles behind one `wv_net::Node` implementation.
//!
//! Message routing is by message direction ([`Msg::is_server_bound`]).
//! Timer tokens are disjoint by construction: client timers have the top
//! bit set (see `client::CLIENT_TIMER_TAG`), server timers are request ids
//! (whose counters stay far below the top bit).

use wv_net::{Node, NodeCtx, SiteId};

use crate::client::{ClientNode, CLIENT_TIMER_TAG};
use crate::msg::Msg;
use crate::server::SuiteServer;

/// A site's node: server, client, or both.
///
/// Variants differ in size; a cluster holds one node per site, so the
/// footprint is negligible and boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum SystemNode {
    /// A file server hosting representatives.
    Server(SuiteServer),
    /// A pure client machine.
    Client(ClientNode),
    /// A workstation: client plus (typically weak) representative.
    Both {
        /// The representative half.
        server: SuiteServer,
        /// The application half.
        client: ClientNode,
    },
}

impl SystemNode {
    /// The client half, if this site has one.
    pub fn as_client(&self) -> Option<&ClientNode> {
        match self {
            SystemNode::Client(c) => Some(c),
            SystemNode::Both { client, .. } => Some(client),
            SystemNode::Server(_) => None,
        }
    }

    /// Mutable client half, if this site has one.
    pub fn as_client_mut(&mut self) -> Option<&mut ClientNode> {
        match self {
            SystemNode::Client(c) => Some(c),
            SystemNode::Both { client, .. } => Some(client),
            SystemNode::Server(_) => None,
        }
    }

    /// The server half, if this site has one.
    pub fn as_server(&self) -> Option<&SuiteServer> {
        match self {
            SystemNode::Server(s) => Some(s),
            SystemNode::Both { server, .. } => Some(server),
            SystemNode::Client(_) => None,
        }
    }

    /// Mutable server half, if this site has one.
    pub fn as_server_mut(&mut self) -> Option<&mut SuiteServer> {
        match self {
            SystemNode::Server(s) => Some(s),
            SystemNode::Both { server, .. } => Some(server),
            SystemNode::Client(_) => None,
        }
    }
}

impl Node for SystemNode {
    type Msg = Msg;

    fn on_message(&mut self, from: SiteId, msg: Msg, ctx: &mut NodeCtx<'_, Msg>) {
        match self {
            SystemNode::Server(s) => s.handle(from, msg, ctx),
            SystemNode::Client(c) => c.handle(from, msg, ctx),
            SystemNode::Both { server, client } => {
                if msg.is_server_bound() {
                    server.handle(from, msg, ctx);
                } else {
                    client.handle(from, msg, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, Msg>) {
        match self {
            SystemNode::Server(s) => s.handle_timer(token, ctx),
            SystemNode::Client(c) => c.handle_timer(token, ctx),
            SystemNode::Both { server, client } => {
                if token & CLIENT_TIMER_TAG != 0 {
                    client.handle_timer(token, ctx);
                } else {
                    server.handle_timer(token, ctx);
                }
            }
        }
    }

    fn on_crash(&mut self) {
        match self {
            SystemNode::Server(s) => s.handle_crash(),
            SystemNode::Client(c) => c.handle_crash(),
            SystemNode::Both { server, client } => {
                server.handle_crash();
                client.handle_crash();
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        match self {
            SystemNode::Server(s) => s.handle_recover(ctx),
            SystemNode::Client(c) => c.handle_recover(),
            SystemNode::Both { server, client } => {
                server.handle_recover(ctx);
                client.handle_recover();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientOptions;
    use crate::quorum::QuorumSpec;
    use crate::suite::SuiteConfig;
    use crate::votes::VoteAssignment;
    use wv_storage::ObjectId;
    use wv_txn::lock::DeadlockPolicy;

    fn cfg() -> SuiteConfig {
        SuiteConfig::new(
            ObjectId(1),
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 0)]),
            QuorumSpec::new(1, 1),
        )
        .expect("legal")
    }

    #[test]
    fn role_accessors() {
        let s = SystemNode::Server(SuiteServer::new(
            SiteId(0),
            vec![cfg()],
            DeadlockPolicy::WaitDie,
        ));
        assert!(s.as_server().is_some());
        assert!(s.as_client().is_none());

        let c = SystemNode::Client(ClientNode::new(
            SiteId(2),
            vec![cfg()],
            vec![1.0; 3],
            ClientOptions::default(),
        ));
        assert!(c.as_client().is_some());
        assert!(c.as_server().is_none());

        let mut b = SystemNode::Both {
            server: SuiteServer::new(SiteId(1), vec![cfg()], DeadlockPolicy::WaitDie),
            client: ClientNode::new(
                SiteId(1),
                vec![cfg()],
                vec![1.0; 3],
                ClientOptions::default(),
            ),
        };
        assert!(b.as_client().is_some());
        assert!(b.as_server().is_some());
        assert!(b.as_client_mut().is_some());
        assert!(b.as_server_mut().is_some());
    }
}
