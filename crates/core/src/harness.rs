//! A synchronous facade over a simulated weighted-voting cluster.
//!
//! [`HarnessBuilder`] assembles sites, votes, quorums, and a network;
//! [`Harness`] then offers blocking-style `read`/`write`/`reconfigure`
//! calls that drive the discrete-event simulation until the operation
//! completes and report the outcome together with its virtual-time
//! latency. Examples, integration tests, and the experiment binaries all
//! sit on this facade; asynchronous use (concurrent operations) is
//! available through [`Harness::enqueue_read`] / [`Harness::enqueue_write`]
//! plus [`Harness::run_until_quiet`].
//!
//! # Determinism contract
//!
//! A harness is a pure function of its builder inputs: the same sites,
//! quorums, network, and seed replay the same virtual-time history —
//! operation by operation, latency by latency — no matter which OS thread
//! builds or drives it, because all randomness flows from the seeded
//! [`wv_sim::DetRng`] and the event queue breaks ties deterministically.
//! The parallel trial engine in `wv-bench` leans on exactly this: each
//! trial constructs its own harness from a derived seed inside a worker
//! thread, and the fan-out is bit-identical to a sequential loop.

use bytes::Bytes;
use wv_net::sim_net::{Cluster, NetStats};
use wv_net::{NetConfig, Partition, SiteId};
use wv_sim::{derive_seed, FailureSchedule, LatencyModel, Sim, SimDuration, SimTime};
use wv_storage::{ObjectId, Version};
use wv_txn::lock::DeadlockPolicy;

use crate::client::{ClientNode, ClientOptions, CompletedOp};
use crate::directory::{Directory, DirectoryCache, DirectoryCacheStats};
use crate::error::OpError;
use crate::node::SystemNode;
use crate::quorum::QuorumSpec;
use crate::server::SuiteServer;
use crate::suite::SuiteConfig;
use crate::votes::VoteAssignment;

/// Label salt for per-site disk-fault seed derivation (`derive_seed`
/// label = salt + site index), keeping the damage-placement streams
/// disjoint from every other derived stream in the workspace.
const DISK_FAULT_SEED_SALT: u64 = 0xD15C_FA17;

/// What one site hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteSpec {
    hosts_rep: bool,
    votes: u32,
    is_client: bool,
}

impl SiteSpec {
    /// A file server holding a representative with `votes` votes
    /// (zero votes = a weak representative).
    pub fn server(votes: u32) -> Self {
        SiteSpec {
            hosts_rep: true,
            votes,
            is_client: false,
        }
    }

    /// A pure client machine.
    pub fn client() -> Self {
        SiteSpec {
            hosts_rep: false,
            votes: 0,
            is_client: true,
        }
    }

    /// A workstation: client plus a weak (zero-vote) representative — the
    /// paper's cache configuration.
    pub fn client_with_weak() -> Self {
        SiteSpec {
            hosts_rep: true,
            votes: 0,
            is_client: true,
        }
    }

    /// A site that is both a voting server and a client.
    pub fn server_and_client(votes: u32) -> Self {
        SiteSpec {
            hosts_rep: true,
            votes,
            is_client: true,
        }
    }
}

/// Builder for a [`Harness`].
pub struct HarnessBuilder {
    specs: Vec<SiteSpec>,
    quorum: QuorumSpec,
    suites: Vec<ObjectId>,
    names: Vec<(String, ObjectId)>,
    seed: u64,
    net: Option<NetConfig>,
    options: ClientOptions,
    policy: DeadlockPolicy,
    unchecked_quorums: bool,
    anti_entropy: Option<SimDuration>,
    group_commit: Option<SimDuration>,
}

impl Default for HarnessBuilder {
    fn default() -> Self {
        HarnessBuilder::new()
    }
}

impl HarnessBuilder {
    /// An empty builder: add sites, then build.
    pub fn new() -> Self {
        HarnessBuilder {
            specs: Vec::new(),
            quorum: QuorumSpec::new(1, 1),
            suites: vec![ObjectId(1)],
            names: Vec::new(),
            seed: 0,
            net: None,
            options: ClientOptions::default(),
            policy: DeadlockPolicy::WaitDie,
            unchecked_quorums: false,
            anti_entropy: None,
            group_commit: None,
        }
    }

    /// Adds a site; sites are numbered in insertion order.
    pub fn site(mut self, spec: SiteSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Shorthand for `site(SiteSpec::client())`.
    pub fn client(self) -> Self {
        self.site(SiteSpec::client())
    }

    /// Sets the read/write quorum sizes.
    pub fn quorum(mut self, q: QuorumSpec) -> Self {
        self.quorum = q;
        self
    }

    /// Sets the suite object id (default `ObjectId(1)`).
    pub fn suite(mut self, suite: ObjectId) -> Self {
        self.suites = vec![suite];
        self
    }

    /// Hosts several suites on the same representatives, all sharing the
    /// vote assignment and quorum sizes. Operations on distinct suites
    /// are fully independent (per-object locks, per-object versions).
    pub fn suites(mut self, suites: impl IntoIterator<Item = ObjectId>) -> Self {
        self.suites = suites.into_iter().collect();
        assert!(!self.suites.is_empty(), "need at least one suite");
        self
    }

    /// Binds a directory path (e.g. `"tenant0/app0/prod"`) to a suite,
    /// on top of the default `tenant0/app0/suite-<id>` binding every
    /// hosted suite receives. The suite must be among the builder's
    /// [`HarnessBuilder::suites`].
    pub fn name(mut self, path: impl Into<String>, suite: ObjectId) -> Self {
        self.names.push((path.into(), suite));
        self
    }

    /// Sets the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the default network (100 ms links, 75 ms local access)
    /// with an explicit configuration.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = Some(net);
        self
    }

    /// Overrides client behaviour tunables.
    pub fn client_options(mut self, options: ClientOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the deadlock policy (default wait-die).
    pub fn deadlock_policy(mut self, policy: DeadlockPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables background anti-entropy repair on every representative:
    /// each probes one peer per suite every `interval`, and a recovering
    /// representative pulls from all peers immediately. Harnesses that
    /// drain the event queue to quiescence must call
    /// [`Harness::stop_anti_entropy`] first, or the periodic probe keeps
    /// the queue alive forever.
    pub fn anti_entropy(mut self, interval: SimDuration) -> Self {
        self.anti_entropy = Some(interval);
        self
    }

    /// Enables WAL group commit on every representative: log records
    /// arriving while a sync is in flight ride the next one, so
    /// concurrent prepares and commits share a single durable write that
    /// settles `latency` after the first record of the batch. Responses
    /// (votes, acks) leave only once their records are durable, so
    /// recovery semantics are unchanged — batching trades `latency` of
    /// response delay for fewer syncs.
    pub fn group_commit(mut self, latency: SimDuration) -> Self {
        self.group_commit = Some(latency);
        self
    }

    /// Skips the quorum intersection check when building suite configs.
    ///
    /// Fault-injection only: the chaos campaign builds deliberately broken
    /// clusters (`r + w = N`) to prove the history oracle notices the
    /// stale reads such a configuration permits. Everything else must let
    /// [`HarnessBuilder::build`] validate.
    pub fn allow_illegal_quorums(mut self) -> Self {
        self.unchecked_quorums = true;
        self
    }

    /// Builds the harness.
    ///
    /// Fails with [`OpError::IllegalConfig`] if the quorum sizes are
    /// illegal for the vote assignment implied by the sites.
    pub fn build(self) -> Result<Harness, OpError> {
        assert!(!self.specs.is_empty(), "a harness needs at least one site");
        assert!(
            self.specs.iter().any(|s| s.is_client),
            "a harness needs at least one client"
        );
        assert!(
            self.specs.iter().any(|s| s.hosts_rep && s.votes > 0),
            "a harness needs at least one voting representative"
        );
        let sites = self.specs.len();
        let assignment = VoteAssignment::new(
            self.specs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.hosts_rep)
                .map(|(i, s)| (SiteId::from(i), s.votes)),
        );
        let configs: Vec<SuiteConfig> = self
            .suites
            .iter()
            .map(|&suite| {
                if self.unchecked_quorums {
                    Ok(SuiteConfig::new_unchecked(
                        suite,
                        assignment.clone(),
                        self.quorum,
                    ))
                } else {
                    SuiteConfig::new(suite, assignment.clone(), self.quorum)
                        .map_err(OpError::IllegalConfig)
                }
            })
            .collect::<Result<_, _>>()?;
        let net = self.net.unwrap_or_else(|| {
            let mut cfg = NetConfig::uniform(sites, LatencyModel::constant_millis(100));
            for s in SiteId::all(sites) {
                cfg.set_link(s, s, LatencyModel::constant_millis(75));
            }
            cfg
        });
        assert_eq!(net.sites(), sites, "network size must match site count");
        // Sites whose client carries an attached weak representative: with
        // anti-entropy on, servers push committed state at them on gossip
        // rounds. Composite sites route `UpdateWeak` to their server half,
        // so only pure clients register.
        let cache_sites: Vec<SiteId> =
            if self.anti_entropy.is_some() && self.options.weak_rep.is_some() {
                self.specs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_client && !s.hosts_rep)
                    .map(|(i, _)| SiteId::from(i))
                    .collect()
            } else {
                Vec::new()
            };
        let mut clients = Vec::new();
        let nodes: Vec<SystemNode> = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let site = SiteId::from(i);
                let server = || {
                    let mut s = SuiteServer::new(site, configs.clone(), self.policy);
                    if let Some(interval) = self.anti_entropy {
                        s.set_anti_entropy(interval);
                    }
                    if let Some(latency) = self.group_commit {
                        s.set_group_commit(latency);
                    }
                    if !cache_sites.is_empty() {
                        s.set_cache_refresh_targets(cache_sites.clone());
                    }
                    s
                };
                let client = || {
                    let costs: Vec<f64> = (0..sites)
                        .map(|j| net.mean_latency_ms(site, SiteId::from(j)))
                        .collect();
                    ClientNode::new(site, configs.clone(), costs, self.options.clone())
                };
                match (spec.hosts_rep, spec.is_client) {
                    (true, true) => {
                        clients.push(site);
                        SystemNode::Both {
                            server: server(),
                            client: client(),
                        }
                    }
                    (true, false) => SystemNode::Server(server()),
                    (false, true) => {
                        clients.push(site);
                        SystemNode::Client(client())
                    }
                    (false, false) => {
                        panic!("site {site} hosts neither a representative nor a client")
                    }
                }
            })
            .collect();
        let server_sites: Vec<SiteId> = self
            .specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.hosts_rep)
            .map(|(i, _)| SiteId::from(i))
            .collect();
        let mut sim = Cluster::sim(nodes, net, self.seed);
        // Seed every server's disk-damage placement stream from the
        // master seed, one derived stream per site, so fault campaigns
        // stay bit-identical at any worker count.
        for &site in &server_sites {
            let fault_seed = derive_seed(self.seed, DISK_FAULT_SEED_SALT + site.0 as u64);
            Cluster::invoke(sim.scheduler(), SimTime::ZERO, site, move |node, _ctx| {
                if let Some(s) = node.as_server_mut() {
                    s.set_disk_fault_seed(fault_seed);
                }
            });
        }
        if self.anti_entropy.is_some() {
            for site in server_sites {
                Cluster::invoke(sim.scheduler(), SimTime::ZERO, site, |node, ctx| {
                    if let Some(s) = node.as_server_mut() {
                        s.start_anti_entropy(ctx);
                    }
                });
            }
        }
        // The directory layer: every hosted suite gets a default
        // hierarchical binding, then the builder's explicit names go on
        // top. Pure facade-side bookkeeping — building it reads nothing
        // from the simulation, so event streams are untouched.
        let mut directory = Directory::new();
        for cfg in &configs {
            directory
                .register(&format!("tenant0/app0/suite-{}", cfg.suite.0), cfg.clone())
                .expect("default binding is well-formed");
        }
        for (path, suite) in &self.names {
            let cfg = configs
                .iter()
                .find(|c| c.suite == *suite)
                .unwrap_or_else(|| panic!("named suite {suite:?} is not hosted"));
            directory
                .register(path, cfg.clone())
                .unwrap_or_else(|e| panic!("bad directory binding: {e}"));
        }
        Ok(Harness {
            sim,
            suites: self.suites,
            clients,
            directory,
            dir_cache: DirectoryCache::new(),
        })
    }
}

/// A successful read.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// The contents.
    pub value: Bytes,
    /// Their version.
    pub version: Version,
    /// End-to-end virtual-time latency.
    pub latency: SimDuration,
    /// Attempts used.
    pub attempts: u32,
}

/// A successful multi-suite transaction.
#[derive(Clone, Debug)]
pub struct TransactionResult {
    /// The version installed at each suite.
    pub versions: Vec<(ObjectId, Version)>,
    /// End-to-end virtual-time latency.
    pub latency: SimDuration,
    /// Attempts used.
    pub attempts: u32,
}

/// A successful write or reconfiguration.
#[derive(Clone, Debug)]
pub struct WriteResult {
    /// The version installed.
    pub version: Version,
    /// End-to-end virtual-time latency.
    pub latency: SimDuration,
    /// Attempts used.
    pub attempts: u32,
}

/// A simulated weighted-voting cluster with a blocking-style API.
pub struct Harness {
    sim: Sim<Cluster<SystemNode>>,
    suites: Vec<ObjectId>,
    clients: Vec<SiteId>,
    /// Authoritative name → suite-config registry; kept current by the
    /// facade's blocking [`Harness::reconfigure_from`].
    directory: Directory,
    /// The facade's memo of resolved names, invalidated on adoption.
    dir_cache: DirectoryCache,
}

impl Harness {
    /// A fluent builder.
    pub fn builder() -> HarnessBuilder {
        HarnessBuilder::new()
    }

    /// The (first) suite this harness serves.
    pub fn suite_id(&self) -> ObjectId {
        self.suites[0]
    }

    /// All suites hosted by the cluster.
    pub fn suite_ids(&self) -> &[ObjectId] {
        &self.suites
    }

    /// Client sites, in declaration order.
    pub fn clients(&self) -> &[SiteId] {
        &self.clients
    }

    /// The default client (the first declared).
    pub fn default_client(&self) -> SiteId {
        self.clients[0]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Transport counters.
    pub fn net_stats(&self) -> NetStats {
        self.sim.world.stats
    }

    /// Reads the suite from the default client.
    pub fn read(&mut self, suite: ObjectId) -> Result<ReadResult, OpError> {
        self.read_from(self.default_client(), suite)
    }

    /// Reads the suite from a specific client.
    pub fn read_from(&mut self, client: SiteId, suite: ObjectId) -> Result<ReadResult, OpError> {
        let done = self.run_op(client, move |c, ctx| {
            c.start_read(suite, ctx);
        })?;
        match done.outcome {
            Ok(ok) => Ok(ReadResult {
                value: ok.value.unwrap_or_default(),
                version: ok.version,
                latency: done.finished.since(done.started),
                attempts: done.attempts,
            }),
            Err(e) => Err(e),
        }
    }

    /// Writes the suite from the default client.
    pub fn write(&mut self, suite: ObjectId, value: Vec<u8>) -> Result<WriteResult, OpError> {
        self.write_from(self.default_client(), suite, value)
    }

    /// Writes the suite from a specific client.
    pub fn write_from(
        &mut self,
        client: SiteId,
        suite: ObjectId,
        value: Vec<u8>,
    ) -> Result<WriteResult, OpError> {
        let done = self.run_op(client, move |c, ctx| {
            c.start_write(suite, value, ctx);
        })?;
        match done.outcome {
            Ok(ok) => Ok(WriteResult {
                version: ok.version,
                latency: done.finished.since(done.started),
                attempts: done.attempts,
            }),
            Err(e) => Err(e),
        }
    }

    /// Atomically writes several suites: every `(suite, value)` commits or
    /// none does, even under crashes (the decision is a single durable
    /// record at the coordinating client).
    pub fn transaction(
        &mut self,
        client: SiteId,
        writes: Vec<(ObjectId, Vec<u8>)>,
    ) -> Result<TransactionResult, OpError> {
        let done = self.run_op(client, move |c, ctx| {
            let writes = writes
                .into_iter()
                .map(|(s, v)| (s, bytes::Bytes::from(v)))
                .collect();
            c.start_transaction(writes, ctx);
        })?;
        match done.outcome {
            Ok(ok) => Ok(TransactionResult {
                versions: ok.multi,
                latency: done.finished.since(done.started),
                attempts: done.attempts,
            }),
            Err(e) => Err(e),
        }
    }

    /// Atomic read-modify-write: reads the current value, applies `f`,
    /// and writes the result — retrying the whole cycle if a concurrent
    /// writer slips in between (the version check at prepare time detects
    /// the race, exactly like a CAS loop).
    pub fn read_modify_write(
        &mut self,
        client: SiteId,
        suite: ObjectId,
        mut f: impl FnMut(&[u8]) -> Vec<u8>,
        max_rounds: u32,
    ) -> Result<WriteResult, OpError> {
        for _ in 0..max_rounds.max(1) {
            let r = self.read_from(client, suite)?;
            let new = f(&r.value);
            match self.write_from(client, suite, new) {
                Ok(w) => return Ok(w),
                // A concurrent writer advanced the version between our
                // read and our prepare; re-read and try again.
                Err(OpError::Conflict) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(OpError::Conflict)
    }

    /// Changes the suite's vote assignment and quorums online, from a
    /// specific client, under the old configuration's write quorum.
    pub fn reconfigure_from(
        &mut self,
        client: SiteId,
        suite: ObjectId,
        assignment: VoteAssignment,
        quorum: QuorumSpec,
    ) -> Result<WriteResult, OpError> {
        let dir_assignment = assignment.clone();
        let done = self.run_op(client, move |c, ctx| {
            c.start_reconfigure(suite, assignment, quorum, ctx);
        })?;
        match done.outcome {
            Ok(ok) => {
                // The committed config version *is* the new generation:
                // adopt it into the directory and drop the cached
                // bindings for this suite (and only this suite).
                self.directory
                    .adopt(suite, dir_assignment, quorum, ok.version.0);
                self.dir_cache.invalidate_suite(suite);
                Ok(WriteResult {
                    version: ok.version,
                    latency: done.finished.since(done.started),
                    attempts: done.attempts,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// The authoritative directory of name → suite bindings.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Resolves a directory path to its suite through the facade's
    /// cache, falling back to the authority on a miss.
    pub fn resolve(&mut self, path: &str) -> Option<ObjectId> {
        self.dir_cache
            .resolve(path, &self.directory)
            .map(|(suite, _)| suite)
    }

    /// Directory-cache hit/miss/invalidation counters.
    pub fn directory_cache_stats(&self) -> DirectoryCacheStats {
        self.dir_cache.stats()
    }

    /// Reads by directory path from the default client. Panics on an
    /// unbound path (the directory is construction-time state).
    pub fn read_named(&mut self, path: &str) -> Result<ReadResult, OpError> {
        let suite = self
            .resolve(path)
            .unwrap_or_else(|| panic!("unbound directory path {path:?}"));
        self.read(suite)
    }

    /// Writes by directory path from the default client. Panics on an
    /// unbound path.
    pub fn write_named(&mut self, path: &str, value: Vec<u8>) -> Result<WriteResult, OpError> {
        let suite = self
            .resolve(path)
            .unwrap_or_else(|| panic!("unbound directory path {path:?}"));
        self.write(suite, value)
    }

    /// Starts an operation and steps the simulation until it completes.
    fn run_op(
        &mut self,
        client: SiteId,
        start: impl FnOnce(&mut ClientNode, &mut wv_net::NodeCtx<'_, crate::msg::Msg>) + 'static,
    ) -> Result<CompletedOp, OpError> {
        assert!(
            self.clients.contains(&client),
            "site {client} is not a client"
        );
        let before = self
            .client_ref(client)
            .map(|c| c.completed.len())
            .unwrap_or(0);
        let at = self.sim.now();
        Cluster::invoke(self.sim.scheduler(), at, client, move |node, ctx| {
            let c = node
                .as_client_mut()
                .expect("invoke target verified as client");
            start(c, ctx);
        });
        // Step until this client's completion log grows. Operations always
        // terminate (every phase is timer-guarded), so this loop ends
        // unless the client site itself is down — in which case the invoke
        // was dropped and we report unavailability.
        loop {
            let len = self
                .client_ref(client)
                .map(|c| c.completed.len())
                .unwrap_or(0);
            if len > before {
                break;
            }
            if !self.sim.step() {
                return Err(OpError::Unavailable {
                    kind: crate::error::OpKind::Read,
                });
            }
        }
        let c = self.sim.world.nodes[client.index()]
            .as_client_mut()
            .expect("client exists");
        Ok(c.completed.remove(before))
    }

    fn client_ref(&self, site: SiteId) -> Option<&ClientNode> {
        self.sim.world.nodes[site.index()].as_client()
    }

    /// Starts a read without waiting; results appear in the client's
    /// completion log (see [`Harness::drain_completed`]).
    pub fn enqueue_read(&mut self, client: SiteId, suite: ObjectId, at: SimTime) {
        Cluster::invoke(self.sim.scheduler(), at, client, move |node, ctx| {
            if let Some(c) = node.as_client_mut() {
                c.start_read(suite, ctx);
            }
        });
    }

    /// Starts a write without waiting.
    pub fn enqueue_write(&mut self, client: SiteId, suite: ObjectId, value: Vec<u8>, at: SimTime) {
        Cluster::invoke(self.sim.scheduler(), at, client, move |node, ctx| {
            if let Some(c) = node.as_client_mut() {
                c.start_write(suite, value, ctx);
            }
        });
    }

    /// Starts a multi-suite transaction without waiting.
    pub fn enqueue_transaction(
        &mut self,
        client: SiteId,
        writes: Vec<(ObjectId, Vec<u8>)>,
        at: SimTime,
    ) {
        Cluster::invoke(self.sim.scheduler(), at, client, move |node, ctx| {
            if let Some(c) = node.as_client_mut() {
                let writes = writes
                    .into_iter()
                    .map(|(s, v)| (s, Bytes::from(v)))
                    .collect();
                c.start_transaction(writes, ctx);
            }
        });
    }

    /// Starts a reconfiguration without waiting; the outcome appears in
    /// the client's completion log like any other operation.
    pub fn enqueue_reconfigure(
        &mut self,
        client: SiteId,
        suite: ObjectId,
        assignment: VoteAssignment,
        quorum: QuorumSpec,
        at: SimTime,
    ) {
        Cluster::invoke(self.sim.scheduler(), at, client, move |node, ctx| {
            if let Some(c) = node.as_client_mut() {
                c.start_reconfigure(suite, assignment, quorum, ctx);
            }
        });
    }

    /// Runs until the event queue drains or `max_events` fire.
    pub fn run_until_quiet(&mut self, max_events: u64) -> u64 {
        self.sim.run_capped(max_events)
    }

    /// Advances virtual time, executing everything due.
    pub fn advance(&mut self, d: SimDuration) {
        let deadline = self.sim.now() + d;
        self.sim.run_until(deadline);
    }

    /// Drains a client's finished operations.
    pub fn drain_completed(&mut self, client: SiteId) -> Vec<CompletedOp> {
        self.sim.world.nodes[client.index()]
            .as_client_mut()
            .map(|c| c.take_completed())
            .unwrap_or_default()
    }

    /// Crashes a site now.
    pub fn crash(&mut self, site: SiteId) {
        let at = self.sim.now();
        Cluster::crash_at(self.sim.scheduler(), at, site);
        self.sim.run_until(at);
    }

    /// Recovers a site now.
    pub fn recover(&mut self, site: SiteId) {
        let at = self.sim.now();
        Cluster::recover_at(self.sim.scheduler(), at, site);
        self.sim.run_until(at);
    }

    /// Imposes a network partition now.
    pub fn partition(&mut self, p: Partition) {
        let at = self.sim.now();
        Cluster::set_partition_at(self.sim.scheduler(), at, p);
        self.sim.run_until(at);
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        let sites = self.sim.world.nodes.len();
        self.partition(Partition::whole(sites));
    }

    /// Sets the loss probability of every cross-site link now (a link-loss
    /// burst begins; clear it with `set_drop_all(0.0)`).
    pub fn set_drop_all(&mut self, p: f64) {
        let at = self.sim.now();
        Cluster::set_drop_all_at(self.sim.scheduler(), at, p);
        self.sim.run_until(at);
    }

    /// Imposes (or, with `SimDuration::ZERO`, clears) a delay spike: every
    /// cross-site message pays `extra` on top of its sampled latency.
    pub fn set_extra_delay(&mut self, extra: SimDuration) {
        let at = self.sim.now();
        Cluster::set_extra_delay_at(self.sim.scheduler(), at, extra);
        self.sim.run_until(at);
    }

    /// Sets the end-to-end message duplication probability now.
    pub fn set_duplicate_prob(&mut self, p: f64) {
        let at = self.sim.now();
        Cluster::set_duplicate_at(self.sim.scheduler(), at, p);
        self.sim.run_until(at);
    }

    /// Arms a torn write at `site`: its next crash persists a partial
    /// prefix of the volatile WAL tail instead of dropping it cleanly.
    pub fn arm_torn_write(&mut self, site: SiteId) {
        let at = self.sim.now();
        Cluster::invoke(self.sim.scheduler(), at, site, |node, _ctx| {
            if let Some(s) = node.as_server_mut() {
                s.arm_torn_write();
            }
        });
        self.sim.run_until(at);
    }

    /// Arms one bit flip of durable WAL bytes at `site`, applied at its
    /// next crash.
    pub fn arm_bit_flip(&mut self, site: SiteId) {
        let at = self.sim.now();
        Cluster::invoke(self.sim.scheduler(), at, site, |node, _ctx| {
            if let Some(s) = node.as_server_mut() {
                s.arm_bit_flip();
            }
        });
        self.sim.run_until(at);
    }

    /// The next `n` new transactions at `site` fail with an I/O error.
    pub fn inject_io_errors(&mut self, site: SiteId, n: u32) {
        let at = self.sim.now();
        Cluster::invoke(self.sim.scheduler(), at, site, move |node, _ctx| {
            if let Some(s) = node.as_server_mut() {
                s.inject_io_errors(n);
            }
        });
        self.sim.run_until(at);
    }

    /// Stalls `site`'s WAL device for `d`: prepares refuse until then.
    pub fn disk_stall(&mut self, site: SiteId, d: SimDuration) {
        let at = self.sim.now();
        Cluster::invoke(self.sim.scheduler(), at, site, move |node, ctx| {
            if let Some(s) = node.as_server_mut() {
                let now = ctx.now();
                s.disk_stall(d, now);
            }
        });
        self.sim.run_until(at);
    }

    /// Whether `site`'s representative is quarantined (votes surrendered
    /// pending a full anti-entropy repair). False for client-only sites.
    pub fn is_quarantined(&self, site: SiteId) -> bool {
        self.sim.world.nodes[site.index()]
            .as_server()
            .is_some_and(SuiteServer::is_quarantined)
    }

    /// Translates a [`FailureSchedule`] into scheduled crash/recover
    /// events on this cluster.
    ///
    /// Window bounds are absolute virtual times, so this is normally
    /// called on a freshly built harness (now = 0). Both constructors —
    /// [`FailureSchedule::bernoulli_snapshot`] and
    /// [`FailureSchedule::mttf_mttr`] — work; the windows they produce
    /// become real outages rather than analysis-only input.
    pub fn apply_failure_schedule(&mut self, schedule: &FailureSchedule) {
        Cluster::apply_failure_schedule(self.sim.scheduler(), schedule);
    }

    /// True if `site` is currently crashed.
    pub fn is_down(&self, site: SiteId) -> bool {
        self.sim.world.is_down(site)
    }

    /// The committed data version at a representative (None if the site
    /// hosts none).
    pub fn version_at(&self, site: SiteId, suite: ObjectId) -> Option<Version> {
        self.sim.world.nodes[site.index()]
            .as_server()
            .map(|s| s.data_version(suite))
    }

    /// The committed data contents at a representative.
    pub fn value_at(&self, site: SiteId, suite: ObjectId) -> Option<Bytes> {
        self.sim.world.nodes[site.index()]
            .as_server()
            .map(|s| s.data_value(suite))
    }

    /// The configuration generation a representative holds.
    pub fn generation_at(&self, site: SiteId, suite: ObjectId) -> Option<u64> {
        self.sim.world.nodes[site.index()]
            .as_server()
            .and_then(|s| s.config(suite))
            .map(|c| c.generation)
    }

    /// The protocol counters of the client at `site` (None if the site has
    /// no client half).
    pub fn client_stats(&self, site: SiteId) -> Option<crate::client::ClientStats> {
        self.sim.world.nodes[site.index()]
            .as_client()
            .map(|c| c.stats)
    }

    /// The protocol counters of the server at `site` (None if the site
    /// hosts no representative).
    pub fn server_stats(&self, site: SiteId) -> Option<crate::server::ServerStats> {
        self.sim.world.nodes[site.index()]
            .as_server()
            .map(|s| s.stats)
    }

    /// The metrics registry of the server at `site` — histograms such as
    /// `wal_batch_size` live here (None if the site hosts no
    /// representative).
    pub fn server_metrics(&self, site: SiteId) -> Option<&wv_sim::MetricsRegistry> {
        self.sim.world.nodes[site.index()]
            .as_server()
            .map(|s| s.metrics())
    }

    /// Per-site data-request counters of the client at `site` — the load
    /// its quorum policy placed on each representative.
    pub fn client_site_load(&self, site: SiteId) -> Option<Vec<u64>> {
        self.sim.world.nodes[site.index()]
            .as_client()
            .map(|c| c.site_load().to_vec())
    }

    /// Silences every representative's anti-entropy probe from now on.
    ///
    /// Call before draining the event queue to quiescence — the periodic
    /// probe otherwise re-arms itself forever and the queue never empties.
    pub fn stop_anti_entropy(&mut self) {
        for node in &mut self.sim.world.nodes {
            if let Some(s) = node.as_server_mut() {
                s.stop_anti_entropy();
            }
        }
    }

    /// Turns on span recording at every client and server node.
    /// Idempotent; recording never perturbs the protocol (tracers touch
    /// neither the RNG nor the effect queue).
    pub fn enable_tracing(&mut self) {
        for node in &mut self.sim.world.nodes {
            if let Some(c) = node.as_client_mut() {
                c.enable_tracing();
            }
            if let Some(s) = node.as_server_mut() {
                s.enable_tracing();
            }
        }
    }

    /// Drains every node's recorded spans, concatenated in site order
    /// (the client half before the server half at a composite site) with
    /// ids rebased to stay unique across nodes. The order is a pure
    /// function of cluster topology, so traced runs are byte-identical
    /// across processes and worker counts.
    pub fn take_trace(&mut self) -> Vec<wv_sim::SpanRecord> {
        let mut merged = Vec::new();
        for node in &mut self.sim.world.nodes {
            if let Some(c) = node.as_client_mut() {
                wv_sim::trace::rebase_merge(&mut merged, c.take_trace());
            }
            if let Some(s) = node.as_server_mut() {
                wv_sim::trace::rebase_merge(&mut merged, s.take_trace());
            }
        }
        merged
    }

    /// Drains the trace and renders it as JSONL.
    pub fn take_trace_jsonl(&mut self) -> String {
        wv_sim::trace::to_jsonl(&self.take_trace())
    }

    /// Turns on quorum-decision auditing at every client node.
    /// Idempotent; auditing never perturbs the protocol (the log touches
    /// neither the RNG nor the effect queue).
    pub fn enable_audit(&mut self) {
        for node in &mut self.sim.world.nodes {
            if let Some(c) = node.as_client_mut() {
                c.enable_audit();
            }
        }
    }

    /// Drains every client's audit records, concatenated in site order.
    /// Records carry their originating site, so no id rebasing is needed;
    /// the order is a pure function of cluster topology.
    pub fn take_audit(&mut self) -> Vec<wv_sim::AuditRecord> {
        let mut merged = Vec::new();
        for node in &mut self.sim.world.nodes {
            if let Some(c) = node.as_client_mut() {
                merged.extend(c.take_audit());
            }
        }
        merged
    }

    /// Drains the audit log and renders it as JSONL.
    pub fn take_audit_jsonl(&mut self) -> String {
        wv_sim::audit::to_jsonl(&self.take_audit())
    }

    /// Turns on windowed telemetry at every node. Clients record request
    /// counts, refusals, and RTT samples; servers record repair installs
    /// and quarantine state.
    pub fn enable_telemetry(&mut self, options: wv_sim::TelemetryOptions) {
        for node in &mut self.sim.world.nodes {
            if let Some(c) = node.as_client_mut() {
                c.enable_telemetry(options);
            }
            if let Some(s) = node.as_server_mut() {
                s.enable_telemetry(options);
            }
        }
    }

    /// Drains every node's telemetry, merges the hubs in site order, and
    /// returns the combined snapshot (None when telemetry is off).
    pub fn telemetry_snapshot(&mut self) -> Option<wv_sim::TelemetrySnapshot> {
        let mut merged: Option<wv_sim::TelemetryHub> = None;
        for node in &mut self.sim.world.nodes {
            let taken = [
                node.as_client_mut().and_then(ClientNode::take_telemetry),
                node.as_server_mut().and_then(SuiteServer::take_telemetry),
            ];
            for hub in taken.into_iter().flatten() {
                match merged.as_mut() {
                    Some(m) => m.merge(&hub),
                    None => merged = Some(hub),
                }
            }
        }
        merged.map(|mut m| m.snapshot())
    }

    /// Immutable access to the underlying cluster (experiments).
    pub fn cluster(&self) -> &Cluster<SystemNode> {
        &self.sim.world
    }

    /// Mutable access to the underlying cluster (experiments).
    pub fn cluster_mut(&mut self) -> &mut Cluster<SystemNode> {
        &mut self.sim.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_server_harness(seed: u64) -> Harness {
        HarnessBuilder::new()
            .seed(seed)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .build()
            .expect("legal configuration")
    }

    #[test]
    fn directory_resolves_named_ops_and_invalidates_on_adoption() {
        let mut h = HarnessBuilder::new()
            .seed(77)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .suites([ObjectId(1), ObjectId(2)])
            .name("tenant0/app0/prod", ObjectId(1))
            .name("tenant0/app1/prod", ObjectId(2))
            .build()
            .expect("legal configuration");
        // Default bindings exist alongside the explicit ones.
        assert_eq!(h.resolve("tenant0/app0/suite-1"), Some(ObjectId(1)));
        assert_eq!(h.resolve("nonexistent/path"), None);
        h.write_named("tenant0/app0/prod", b"a".to_vec())
            .expect("write");
        let r = h.read_named("tenant0/app0/prod").expect("read");
        assert_eq!(&r.value[..], b"a");
        let s = h.directory_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 2), "second prod resolve hits");
        // Cache suite 2's binding, then reconfigure suite 1: only suite
        // 1's cached bindings drop, and the authority adopts the new
        // generation.
        assert_eq!(h.resolve("tenant0/app1/prod"), Some(ObjectId(2)));
        let client = h.default_client();
        let w = h
            .reconfigure_from(
                client,
                ObjectId(1),
                VoteAssignment::new([(SiteId(0), 2), (SiteId(1), 1), (SiteId(2), 1)]),
                QuorumSpec::new(2, 3),
            )
            .expect("reconfigure");
        assert_eq!(
            h.directory()
                .resolve("tenant0/app0/prod")
                .unwrap()
                .generation,
            w.version.0,
            "authority adopted the committed generation"
        );
        let s = h.directory_cache_stats();
        assert_eq!(s.invalidations, 2, "both suite-1 bindings dropped");
        // Re-resolving misses and still routes reads correctly.
        assert_eq!(h.resolve("tenant0/app0/prod"), Some(ObjectId(1)));
        assert_eq!(h.directory_cache_stats().misses, 4);
        let r = h.read_named("tenant0/app0/prod").expect("read");
        assert_eq!(&r.value[..], b"a", "contents survive reconfiguration");
        // Suite 2's cached binding was untouched: resolving it hits.
        let hits_before = h.directory_cache_stats().hits;
        assert_eq!(h.resolve("tenant0/app1/prod"), Some(ObjectId(2)));
        assert_eq!(h.directory_cache_stats().hits, hits_before + 1);
    }

    #[test]
    fn tracing_records_spans_without_changing_outcomes() {
        use wv_sim::trace::{from_jsonl, to_jsonl, SpanKind, SpanOutcome};
        let mut plain = three_server_harness(11);
        let mut traced = three_server_harness(11);
        traced.enable_tracing();
        let suite = plain.suite_id();
        for i in 0..5u8 {
            let a = plain.write(suite, vec![i]).expect("write");
            let b = traced.write(suite, vec![i]).expect("write");
            assert_eq!(a.version, b.version);
            assert_eq!(a.latency, b.latency, "tracing must not shift time");
            let ra = plain.read(suite).expect("read");
            let rb = traced.read(suite).expect("read");
            assert_eq!(ra.version, rb.version);
            assert_eq!(ra.latency, rb.latency);
        }
        assert!(plain.take_trace().is_empty(), "tracing off records nothing");
        let spans = traced.take_trace();
        let roots: Vec<_> = spans.iter().filter(|s| s.kind.is_op_root()).collect();
        assert_eq!(roots.len(), 10, "one root per op");
        assert!(roots.iter().all(|s| s.outcome == SpanOutcome::Ok));
        for kind in [
            SpanKind::Inquiry,
            SpanKind::Rpc,
            SpanKind::Prepare,
            SpanKind::Commit,
            SpanKind::WalWrite,
        ] {
            assert!(
                spans.iter().any(|s| s.kind == kind),
                "expected a {kind:?} span"
            );
        }
        // Ids are unique after the cross-node merge, and parents resolve.
        let mut ids: Vec<u32> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), spans.len(), "rebased ids are unique");
        let back = from_jsonl(&to_jsonl(&spans)).expect("round-trip");
        assert_eq!(back, spans);
        // A second drain is empty until new work happens.
        assert!(traced.take_trace().is_empty());
    }

    #[test]
    fn audit_and_telemetry_never_change_outcomes() {
        use wv_sim::audit::DecisionKind;
        use wv_sim::TelemetryOptions;
        let mut plain = three_server_harness(23);
        let mut observed = three_server_harness(23);
        observed.enable_audit();
        observed.enable_telemetry(TelemetryOptions::default());
        let suite = plain.suite_id();
        for i in 0..6u8 {
            let a = plain.write(suite, vec![i]).expect("write");
            let b = observed.write(suite, vec![i]).expect("write");
            assert_eq!(a.version, b.version);
            assert_eq!(a.latency, b.latency, "observation must not shift time");
            let ra = plain.read(suite).expect("read");
            let rb = observed.read(suite).expect("read");
            assert_eq!(ra.version, rb.version);
            assert_eq!(ra.latency, rb.latency);
        }
        assert!(
            plain.take_audit().is_empty(),
            "auditing off records nothing"
        );
        assert!(plain.telemetry_snapshot().is_none());
        let records = observed.take_audit();
        assert!(!records.is_empty(), "audited run records decisions");
        assert!(records
            .iter()
            .any(|r| r.kind == DecisionKind::OptimisticFetch));
        assert!(records.iter().any(|r| r.kind == DecisionKind::WriteQuorum));
        // Every record names at least one chosen site, with inputs for
        // every site the planner considered.
        for r in &records {
            assert!(!r.chosen.is_empty(), "decision chose no site: {r:?}");
            assert!(r.inputs.len() >= r.chosen.len());
            assert_eq!(r.policy, "cheapest_first");
        }
        let snap = observed
            .telemetry_snapshot()
            .expect("telemetry hub present");
        let requests: u64 = (0..3)
            .flat_map(|s| snap.windows(s).iter())
            .map(|w| w.requests)
            .sum();
        assert!(requests > 0, "telemetry saw client requests");
        // A second drain is empty / gone until re-enabled.
        assert!(observed.take_audit().is_empty());
        assert!(observed.telemetry_snapshot().is_none());
    }

    #[test]
    fn corruption_quarantines_a_replica_and_anti_entropy_heals_it() {
        // Hunt for a seed whose bit flip lands in a data record (past the
        // config), so the quarantined replica can heal through data pulls.
        for seed in 0..64u64 {
            let mut h = HarnessBuilder::new()
                .seed(seed)
                .site(SiteSpec::server(1))
                .site(SiteSpec::server(1))
                .site(SiteSpec::server(1))
                .client()
                .quorum(QuorumSpec::new(2, 2))
                .anti_entropy(SimDuration::from_millis(500))
                .build()
                .expect("legal configuration");
            let suite = h.suite_id();
            for i in 0..6u8 {
                h.write(suite, vec![i]).expect("write");
            }
            h.arm_bit_flip(SiteId(0));
            h.crash(SiteId(0));
            h.recover(SiteId(0));
            let stats = h.server_stats(SiteId(0)).expect("server");
            if !h.is_quarantined(SiteId(0)) || stats.quarantines != 1 {
                continue; // flip hit the config record or scanned clean
            }
            // r + w > n holds without site 0's vote: reads and writes
            // keep working against the two intact replicas.
            let r = h.read(suite).expect("read routes around quarantine");
            assert_eq!(r.version, Version(6));
            h.write(suite, b"after".to_vec())
                .expect("write without the quarantined vote");
            // Gossip rounds pull full state from both peers; the replica
            // heals, re-announces, and converges on the committed state.
            h.advance(SimDuration::from_secs(5));
            assert!(!h.is_quarantined(SiteId(0)), "full sweep heals");
            let stats = h.server_stats(SiteId(0)).expect("server");
            assert_eq!(stats.requarantine_repairs, 1);
            assert_eq!(stats.poison_escapes, 0);
            assert_eq!(stats.served_while_quarantined, 0);
            assert_eq!(
                h.version_at(SiteId(0), suite),
                Some(Version(7)),
                "healed replica absorbed the post-quarantine write"
            );
            return;
        }
        panic!("no seed in 0..64 corrupted a data record");
    }

    #[test]
    fn pipeline_depth_one_matches_the_classic_client_exactly() {
        // The throughput knobs off (no group commit, cheapest-first) and
        // the window at depth 1 must replay the classic client's history
        // bit for bit: same versions, same virtual-time latencies, same
        // wire traffic.
        use crate::client::QuorumPolicy;
        let mut classic = three_server_harness(71);
        let mut piped = HarnessBuilder::new()
            .seed(71)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .client_options(ClientOptions {
                pipeline_depth: Some(1),
                quorum_policy: QuorumPolicy::CheapestFirst,
                ..ClientOptions::default()
            })
            .build()
            .expect("legal");
        let suite = classic.suite_id();
        for i in 0..5u8 {
            let wa = classic.write(suite, vec![i]).expect("write");
            let wb = piped.write(suite, vec![i]).expect("write");
            assert_eq!(wa.version, wb.version);
            assert_eq!(wa.latency, wb.latency, "depth 1 must not shift time");
            let ra = classic.read(suite).expect("read");
            let rb = piped.read(suite).expect("read");
            assert_eq!(ra.version, rb.version);
            assert_eq!(ra.latency, rb.latency);
        }
        assert_eq!(
            classic.net_stats(),
            piped.net_stats(),
            "identical wire history"
        );
        assert_eq!(
            classic.client_stats(SiteId(3)),
            piped.client_stats(SiteId(3))
        );
    }

    #[test]
    fn group_commit_batches_concurrent_writes_into_fewer_syncs() {
        let suites: Vec<ObjectId> = (1..=6).map(ObjectId).collect();
        let mut h = HarnessBuilder::new()
            .seed(72)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .suites(suites.clone())
            .client_options(ClientOptions {
                pipeline_depth: Some(6),
                ..ClientOptions::default()
            })
            .group_commit(SimDuration::from_millis(5))
            .build()
            .expect("legal");
        let client = h.default_client();
        for (i, &suite) in suites.iter().enumerate() {
            h.enqueue_write(client, suite, format!("v{i}").into_bytes(), SimTime::ZERO);
        }
        h.run_until_quiet(1_000_000);
        let done = h.drain_completed(client);
        assert_eq!(done.len(), 6);
        assert!(done.iter().all(|op| op.outcome.is_ok()));
        for (i, &suite) in suites.iter().enumerate() {
            let r = h.read(suite).expect("read");
            assert_eq!(r.value, format!("v{i}").into_bytes());
            assert_eq!(r.version, Version(1));
        }
        // Batching evidence: six concurrent prepares arrive at a server in
        // the same instant, so at least one sync covered several records.
        let batches: u64 = SiteId::all(3)
            .map(|s| h.server_stats(s).expect("server").wal_batches)
            .sum();
        let records: u64 = SiteId::all(3)
            .map(|s| h.server_stats(s).expect("server").wal_batched_records)
            .sum();
        assert!(batches >= 1);
        assert!(
            records > batches,
            "expected a multi-record batch: {records} records over {batches} batches"
        );
        // The histogram mirrors the counters.
        let hist = SiteId::all(3)
            .find_map(|s| {
                h.server_metrics(s)
                    .and_then(|m| m.histogram("wal_batch_size"))
            })
            .expect("at least one server recorded a batch");
        assert!(!hist.is_empty());
    }

    #[test]
    fn load_balanced_policy_spreads_fetch_load_across_equal_sites() {
        use crate::client::QuorumPolicy;
        let build = |policy: QuorumPolicy| {
            HarnessBuilder::new()
                .seed(73)
                .site(SiteSpec::server(1))
                .site(SiteSpec::server(1))
                .site(SiteSpec::server(1))
                .client()
                .quorum(QuorumSpec::new(2, 2))
                .client_options(ClientOptions {
                    quorum_policy: policy,
                    ..ClientOptions::default()
                })
                .build()
                .expect("legal")
        };
        let drive = |h: &mut Harness| {
            let suite = h.suite_id();
            h.write(suite, b"seed".to_vec()).expect("write");
            // Count only the read fetches: diff against the post-write load.
            let base = h.client_site_load(h.default_client()).expect("client");
            for _ in 0..12 {
                h.read(suite).expect("read");
            }
            let load = h.client_site_load(h.default_client()).expect("client");
            load.iter()
                .zip(&base)
                .map(|(l, b)| l - b)
                .collect::<Vec<_>>()
        };
        // Cheapest-first piles every fetch onto one representative (all
        // links cost the same, ties broken by site id)…
        let mut cheap = build(QuorumPolicy::CheapestFirst);
        let load = drive(&mut cheap);
        let busy = load.iter().filter(|&&l| l > 0).count();
        assert_eq!(busy, 1, "cheapest-first hammers one site: {load:?}");
        // …while load-balanced rotation spreads it across all three
        // cost-equivalent representatives.
        let mut lb = build(QuorumPolicy::LoadBalanced);
        let load = drive(&mut lb);
        let busy = load.iter().take(3).filter(|&&l| l > 0).count();
        assert_eq!(busy, 3, "rotation shares the read load: {load:?}");
    }

    #[test]
    fn hedged_read_beats_a_crashed_primary_in_a_live_trial() {
        use crate::client::{HealthOptions, QuorumPolicy};
        use wv_sim::trace::{SpanKind, SpanOutcome};
        // Asymmetric links from the client (site 3): s0 closest, then s1,
        // with s2 far enough that only the hedge reaches it in time.
        let mut net = NetConfig::uniform(4, LatencyModel::constant_millis(50));
        net.set_link_symmetric(SiteId(3), SiteId(0), LatencyModel::constant_millis(10));
        net.set_link_symmetric(SiteId(3), SiteId(1), LatencyModel::constant_millis(20));
        net.set_link_symmetric(SiteId(3), SiteId(2), LatencyModel::constant_millis(75));
        let mut h = HarnessBuilder::new()
            .seed(74)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 3))
            .net(net)
            .client_options(ClientOptions {
                quorum_policy: QuorumPolicy::CheapestFirst,
                health: Some(HealthOptions::default()),
                ..ClientOptions::default()
            })
            .build()
            .expect("legal");
        h.enable_tracing();
        let suite = h.suite_id();
        let client = h.default_client();
        // w = 3 installs v1 everywhere and seeds every site's RTT EWMA.
        h.write(suite, b"v1".to_vec()).expect("write");
        let _ = h.take_trace();
        // s0 (the optimistic-fetch guess) is already down when the read
        // starts, so the fetch goes to s1 — which dies after answering
        // the version inquiry but before the fetch reaches it. The hedge
        // fires at 3× s1's EWMA RTT and s2 serves the read.
        h.crash(SiteId(0));
        h.enqueue_read(client, suite, h.now());
        h.advance(SimDuration::from_millis(100));
        h.crash(SiteId(1));
        h.run_until_quiet(1_000_000);
        let done = h.drain_completed(client);
        assert_eq!(done.len(), 1);
        let op = &done[0];
        let ok = op.outcome.as_ref().expect("hedge completed the read");
        assert_eq!(ok.version, Version(1));
        assert_eq!(ok.value.as_deref(), Some(&b"v1"[..]));
        let stats = h.client_stats(client).expect("client");
        assert_eq!(stats.hedges_fired, 1, "{stats:?}");
        assert_eq!(stats.hedge_wins, 1, "the hedge leg answered first");
        // The hedge span records the win: aimed at s2, closed Ok.
        let spans = h.take_trace();
        let hedge: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Hedge).collect();
        assert_eq!(hedge.len(), 1);
        assert_eq!(hedge[0].peer, SiteId(2).0);
        assert_eq!(hedge[0].outcome, SpanOutcome::Ok);
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut h = three_server_harness(7);
        let suite = h.suite_id();
        let w = h.write(suite, b"payload".to_vec()).expect("write");
        assert_eq!(w.version, Version(1));
        assert!(w.latency > SimDuration::ZERO);
        let r = h.read(suite).expect("read");
        assert_eq!(&r.value[..], b"payload");
        assert_eq!(r.version, Version(1));
    }

    #[test]
    fn versions_advance_with_each_write() {
        let mut h = three_server_harness(8);
        let suite = h.suite_id();
        for i in 1..=5u64 {
            let w = h.write(suite, format!("v{i}").into_bytes()).expect("write");
            assert_eq!(w.version, Version(i));
        }
        let r = h.read(suite).expect("read");
        assert_eq!(&r.value[..], b"v5");
    }

    #[test]
    fn write_quorum_size_two_leaves_one_stale_replica() {
        let mut h = three_server_harness(9);
        let suite = h.suite_id();
        h.write(suite, b"x".to_vec()).expect("write");
        let versions: Vec<Version> = SiteId::all(3)
            .map(|s| h.version_at(s, suite).expect("server"))
            .collect();
        let fresh = versions.iter().filter(|v| **v == Version(1)).count();
        let stale = versions.iter().filter(|v| **v == Version(0)).count();
        assert_eq!(fresh, 2, "the write quorum installed the version");
        assert_eq!(stale, 1, "the third replica is allowed to lag");
        // And yet reads always see the new version (quorum intersection).
        let r = h.read(suite).expect("read");
        assert_eq!(r.version, Version(1));
    }

    #[test]
    fn read_with_one_server_down_succeeds() {
        let mut h = three_server_harness(10);
        let suite = h.suite_id();
        h.write(suite, b"alive".to_vec()).expect("write");
        h.crash(SiteId(2));
        let r = h.read(suite).expect("read despite one crash");
        assert_eq!(&r.value[..], b"alive");
    }

    #[test]
    fn write_with_two_servers_down_is_unavailable() {
        let mut h = three_server_harness(11);
        let suite = h.suite_id();
        h.crash(SiteId(1));
        h.crash(SiteId(2));
        let err = h.write(suite, b"nope".to_vec()).expect_err("no quorum");
        assert!(matches!(err, OpError::Unavailable { .. }));
    }

    #[test]
    fn recovery_restores_service() {
        let mut h = three_server_harness(12);
        let suite = h.suite_id();
        h.crash(SiteId(1));
        h.crash(SiteId(2));
        assert!(h.write(suite, b"a".to_vec()).is_err());
        h.recover(SiteId(1));
        let w = h.write(suite, b"b".to_vec()).expect("quorum back");
        assert_eq!(w.version, Version(1));
    }

    #[test]
    fn partition_blocks_minority_client() {
        let mut h = three_server_harness(13);
        let suite = h.suite_id();
        h.write(suite, b"pre".to_vec()).expect("write");
        // Cut the client (site 3) off from servers 1 and 2.
        h.partition(Partition::split(
            4,
            &[&[SiteId(0), SiteId(3)], &[SiteId(1), SiteId(2)]],
        ));
        let err = h.read(suite).expect_err("one vote is not a read quorum");
        assert!(matches!(err, OpError::Unavailable { .. }));
        h.heal();
        assert!(h.read(suite).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut h = three_server_harness(seed);
            let suite = h.suite_id();
            let w = h.write(suite, b"d".to_vec()).expect("write");
            let r = h.read(suite).expect("read");
            (w.latency, r.latency, h.net_stats())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn trial_history_is_independent_of_the_building_thread() {
        // The determinism contract the parallel trial engine depends on:
        // a harness built and driven on a worker thread replays exactly
        // the history it produces on the main thread.
        fn trial(seed: u64) -> (SimDuration, SimDuration, Vec<Option<Version>>) {
            let mut h = three_server_harness(seed);
            let suite = h.suite_id();
            let w = h.write(suite, b"t".to_vec()).expect("write");
            h.advance(SimDuration::from_secs(1));
            let r = h.read(suite).expect("read");
            let versions = SiteId::all(3).map(|s| h.version_at(s, suite)).collect();
            (w.latency, r.latency, versions)
        }
        let on_main: Vec<_> = (0..4u64).map(trial).collect();
        let on_workers: Vec<_> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|seed| scope.spawn(move || trial(seed)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(on_main, on_workers);
    }

    #[test]
    fn builder_rejects_illegal_quorum() {
        let result = HarnessBuilder::new()
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(1, 1)) // 1 + 1 <= 2: illegal
            .build();
        assert!(matches!(result.err(), Some(OpError::IllegalConfig(_))));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn builder_requires_a_client() {
        let _ = HarnessBuilder::new().site(SiteSpec::server(1)).build();
    }

    #[test]
    fn weak_representative_serves_later_reads_locally() {
        // Workstation (client + weak rep) with a single voting server.
        let mut h = HarnessBuilder::new()
            .seed(5)
            .site(SiteSpec::server(1))
            .site(SiteSpec::client_with_weak())
            .quorum(QuorumSpec::new(1, 1))
            .build()
            .expect("legal");
        let suite = h.suite_id();
        let client = SiteId(1);
        h.write_from(client, suite, b"cached".to_vec())
            .expect("write");
        // First read fetches from the server and refreshes the weak rep.
        let r1 = h.read_from(client, suite).expect("read 1");
        assert_eq!(&r1.value[..], b"cached");
        h.advance(SimDuration::from_secs(1)); // let the cache fill land
        assert_eq!(h.version_at(client, suite), Some(Version(1)));
        // Second read is served by the local weak representative: its
        // fetch leg uses the self-link.
        let r2 = h.read_from(client, suite).expect("read 2");
        assert_eq!(&r2.value[..], b"cached");
        assert!(
            r2.latency <= r1.latency,
            "cached read ({:?}) should not be slower than remote ({:?})",
            r2.latency,
            r1.latency
        );
    }

    #[test]
    fn multiple_suites_are_independent() {
        let mut h = HarnessBuilder::new()
            .seed(33)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::majority(3))
            .suites([ObjectId(10), ObjectId(20), ObjectId(30)])
            .build()
            .expect("legal");
        assert_eq!(h.suite_ids().len(), 3);
        for (i, &suite) in h.suite_ids().to_vec().iter().enumerate() {
            h.write(suite, format!("suite-{i}").into_bytes())
                .expect("write");
        }
        for (i, &suite) in h.suite_ids().to_vec().iter().enumerate() {
            let r = h.read(suite).expect("read");
            assert_eq!(r.value, format!("suite-{i}").into_bytes());
            assert_eq!(r.version, Version(1), "versions are per-suite");
        }
    }

    #[test]
    fn transaction_commits_all_suites_atomically() {
        let mut h = HarnessBuilder::new()
            .seed(55)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::majority(3))
            .suites([ObjectId(1), ObjectId(2), ObjectId(3)])
            .build()
            .expect("legal");
        let client = h.default_client();
        let t = h
            .transaction(
                client,
                vec![
                    (ObjectId(1), b"alpha".to_vec()),
                    (ObjectId(2), b"beta".to_vec()),
                    (ObjectId(3), b"gamma".to_vec()),
                ],
            )
            .expect("transaction commits");
        assert_eq!(t.versions.len(), 3);
        assert!(t.versions.iter().all(|(_, v)| *v == Version(1)));
        for (suite, expect) in [
            (ObjectId(1), &b"alpha"[..]),
            (ObjectId(2), &b"beta"[..]),
            (ObjectId(3), &b"gamma"[..]),
        ] {
            let r = h.read(suite).expect("read");
            assert_eq!(&r.value[..], expect);
            assert_eq!(r.version, Version(1));
        }
        // A second transaction moves both suites it touches to version 2,
        // leaving the third at 1.
        let t2 = h
            .transaction(
                client,
                vec![
                    (ObjectId(1), b"alpha2".to_vec()),
                    (ObjectId(3), b"gamma2".to_vec()),
                ],
            )
            .expect("transaction commits");
        assert!(t2.versions.iter().all(|(_, v)| *v == Version(2)));
        assert_eq!(h.read(ObjectId(2)).expect("read").version, Version(1));
        assert_eq!(&h.read(ObjectId(1)).expect("read").value[..], b"alpha2");
    }

    #[test]
    fn transaction_blocks_when_any_suite_lacks_a_quorum() {
        // Suites share the same representatives here, so instead make the
        // whole write quorum unreachable and verify all-or-nothing.
        let mut h = HarnessBuilder::new()
            .seed(56)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::majority(3))
            .suites([ObjectId(1), ObjectId(2)])
            .build()
            .expect("legal");
        let client = h.default_client();
        h.crash(SiteId(1));
        h.crash(SiteId(2));
        let err = h
            .transaction(
                client,
                vec![(ObjectId(1), b"a".to_vec()), (ObjectId(2), b"b".to_vec())],
            )
            .expect_err("no quorum");
        assert!(matches!(err, OpError::Unavailable { .. }));
        h.recover(SiteId(1));
        h.recover(SiteId(2));
        // Nothing leaked: both suites still at version 0.
        for suite in [ObjectId(1), ObjectId(2)] {
            assert_eq!(h.read(suite).expect("read").version, Version(0));
        }
    }

    #[test]
    fn transaction_with_unknown_suite_fails_cleanly() {
        let mut h = three_server_harness(57);
        let client = h.default_client();
        let err = h
            .transaction(client, vec![(ObjectId(99), b"x".to_vec())])
            .expect_err("unknown");
        assert_eq!(err, OpError::UnknownSuite);
    }

    #[test]
    fn read_modify_write_applies_a_function_atomically() {
        let mut h = three_server_harness(44);
        let suite = h.suite_id();
        h.write(suite, 5u64.to_le_bytes().to_vec()).expect("init");
        let client = h.default_client();
        for _ in 0..4 {
            h.read_modify_write(
                client,
                suite,
                |old| {
                    let mut v = [0u8; 8];
                    v.copy_from_slice(old);
                    (u64::from_le_bytes(v) + 10).to_le_bytes().to_vec()
                },
                5,
            )
            .expect("rmw");
        }
        let r = h.read(suite).expect("read");
        let mut v = [0u8; 8];
        v.copy_from_slice(&r.value);
        assert_eq!(u64::from_le_bytes(v), 45);
        assert_eq!(r.version, Version(5), "init + 4 increments");
    }

    #[test]
    fn failure_schedule_windows_become_real_outages() {
        let mut h = three_server_harness(61);
        let suite = h.suite_id();
        let mut schedule = FailureSchedule::none(3);
        schedule.add_outage(1, SimTime::from_secs(2), SimTime::from_secs(8));
        schedule.add_outage(2, SimTime::from_secs(3), SimTime::from_secs(9));
        h.apply_failure_schedule(&schedule);
        h.write(suite, b"pre".to_vec()).expect("healthy write");
        // Inside the overlap of both outages only one server remains: no
        // write quorum of 2.
        h.advance(SimDuration::from_secs(4));
        assert!(h.is_down(SiteId(1)) && h.is_down(SiteId(2)));
        // A write issued mid-outage retries until the windows close: it
        // succeeds, but only after site 1 recovers at t = 8 s.
        h.write(suite, b"mid".to_vec()).expect("write rides it out");
        assert!(h.now() >= SimTime::from_secs(8), "blocked until recovery");
        assert!(!h.is_down(SiteId(1)));
        let stats = h.client_stats(h.default_client()).expect("client");
        assert!(stats.retries > 0, "the outage forced retries");
    }

    #[test]
    fn mttf_mttr_schedule_drives_crashes_and_recoveries() {
        let mut rng = wv_sim::DetRng::new(77);
        let schedule = FailureSchedule::mttf_mttr(
            3,
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
            SimTime::from_secs(120),
            &mut rng,
        );
        let windows: usize = (0..3).map(|s| schedule.windows(s).len()).sum();
        assert!(windows > 0, "a 120 s horizon at 20 s MTTF produces outages");
        let mut h = three_server_harness(62);
        let suite = h.suite_id();
        h.apply_failure_schedule(&schedule);
        // Drive a write every 10 s across the horizon; the cluster may
        // block during deep outages but must end healthy and consistent.
        let mut committed = 0u64;
        for i in 0..12u64 {
            if h.write(suite, format!("t{i}").into_bytes()).is_ok() {
                committed += 1;
            }
            h.advance(SimDuration::from_secs(10));
        }
        assert!(committed > 0, "some writes land between outages");
        // Every acknowledged write is visible afterwards (an in-doubt
        // write resolved at recovery may add more versions on top).
        let r = h.read(suite).expect("healthy after the horizon");
        assert!(r.version.0 >= committed, "{} < {committed}", r.version.0);
    }

    #[test]
    fn allow_illegal_quorums_builds_a_non_intersecting_cluster() {
        // r + w = N: `build` would reject this; the fault-injection path
        // accepts it and the cluster *appears* to work while healthy.
        let mut h = HarnessBuilder::new()
            .seed(63)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .allow_illegal_quorums()
            .build()
            .expect("unchecked build accepts r + w = N");
        let suite = h.suite_id();
        h.write(suite, b"x".to_vec()).expect("write");
        h.read(suite).expect("read");
    }

    #[test]
    fn timeout_and_exhaustion_counters_reach_the_stats() {
        // Crash everything but one server: writes burn their whole attempt
        // budget on phase timeouts, then give up.
        let mut h = HarnessBuilder::new()
            .seed(64)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::majority(3))
            .client_options(ClientOptions {
                phase_timeout: SimDuration::from_millis(500),
                max_attempts: 3,
                ..ClientOptions::default()
            })
            .build()
            .expect("legal");
        let suite = h.suite_id();
        h.crash(SiteId(1));
        h.crash(SiteId(2));
        let err = h.write(suite, b"nope".to_vec()).expect_err("no quorum");
        assert!(matches!(err, OpError::Unavailable { .. }));
        let stats = h.client_stats(h.default_client()).expect("client");
        assert_eq!(stats.attempts_exhausted, 1, "the op gave up exactly once");
        assert_eq!(stats.retries, 2, "two retries before the budget ran out");
        assert!(
            stats.timeouts >= 3,
            "every attempt timed out at least once: {stats:?}"
        );
    }

    #[test]
    fn online_reconfiguration_changes_quorums() {
        let mut h = three_server_harness(21);
        let suite = h.suite_id();
        h.write(suite, b"before".to_vec()).expect("write");
        // Move to read-one/write-all.
        let assignment = VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]);
        let w = h
            .reconfigure_from(h.default_client(), suite, assignment, QuorumSpec::new(1, 3))
            .expect("reconfigure");
        assert_eq!(w.version, Version(2), "config generation moved to 2");
        // Writes now install everywhere.
        h.write(suite, b"after".to_vec()).expect("write");
        for s in SiteId::all(3) {
            assert_eq!(h.value_at(s, suite).expect("server"), &b"after"[..]);
        }
        let r = h.read(suite).expect("read");
        assert_eq!(&r.value[..], b"after");
    }

    #[test]
    fn anti_entropy_catches_up_a_recovered_representative() {
        let mut h = HarnessBuilder::new()
            .seed(31)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .anti_entropy(SimDuration::from_millis(500))
            .build()
            .expect("legal configuration");
        let suite = h.suite_id();
        h.write(suite, b"v1".to_vec()).expect("write");
        h.crash(SiteId(2));
        h.write(suite, b"v2".to_vec()).expect("write");
        h.write(suite, b"v3".to_vec()).expect("write");
        h.recover(SiteId(2));
        // Recovery fires the pull immediately, but the answers are still
        // in flight: the site is stale right now…
        assert!(h.version_at(SiteId(2), suite).expect("server") < Version(3));
        // …and current shortly after, with no client write involved.
        h.advance(SimDuration::from_secs(2));
        assert_eq!(h.version_at(SiteId(2), suite), Some(Version(3)));
        assert_eq!(h.value_at(SiteId(2), suite).as_deref(), Some(&b"v3"[..]));
        assert!(h.server_stats(SiteId(2)).expect("server").repairs_completed >= 1);
        // With the probes silenced the queue drains.
        h.stop_anti_entropy();
        h.run_until_quiet(1_000_000);
    }

    #[test]
    fn anti_entropy_refills_a_weak_representative() {
        // r=1/w=2 over two voting sites: the write quorum never includes
        // the zero-vote cache, so only the gossip probe can refill it.
        let mut h = HarnessBuilder::new()
            .seed(32)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::client_with_weak())
            .quorum(QuorumSpec::new(1, 2))
            .anti_entropy(SimDuration::from_millis(500))
            .build()
            .expect("legal configuration");
        let suite = h.suite_id();
        h.write(suite, b"fresh".to_vec()).expect("write");
        h.advance(SimDuration::from_secs(2));
        assert_eq!(h.version_at(SiteId(2), suite), Some(Version(1)));
        assert_eq!(h.value_at(SiteId(2), suite).as_deref(), Some(&b"fresh"[..]));
    }

    #[test]
    fn weak_rep_none_matches_the_classic_client_exactly() {
        // The paired-harness pin for the cache tier: an explicit
        // `weak_rep: None` replays the classic client's history bit for
        // bit — same versions, same virtual-time latencies, same wire
        // traffic, same counters.
        let mut classic = three_server_harness(74);
        let mut pinned = HarnessBuilder::new()
            .seed(74)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .client_options(ClientOptions {
                weak_rep: None,
                ..ClientOptions::default()
            })
            .build()
            .expect("legal");
        let suite = classic.suite_id();
        for i in 0..5u8 {
            let wa = classic.write(suite, vec![i]).expect("write");
            let wb = pinned.write(suite, vec![i]).expect("write");
            assert_eq!(wa.version, wb.version);
            assert_eq!(wa.latency, wb.latency, "weak_rep off must not shift time");
            let ra = classic.read(suite).expect("read");
            let rb = pinned.read(suite).expect("read");
            assert_eq!(ra.version, rb.version);
            assert_eq!(ra.latency, rb.latency);
        }
        assert_eq!(
            classic.net_stats(),
            pinned.net_stats(),
            "identical wire history"
        );
        assert_eq!(
            classic.client_stats(SiteId(3)),
            pinned.client_stats(SiteId(3))
        );
    }

    fn cache_tier_harness(seed: u64, wr: crate::client::WeakRepOptions) -> Harness {
        HarnessBuilder::new()
            .seed(seed)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .client_options(ClientOptions {
                weak_rep: Some(wr),
                ..ClientOptions::default()
            })
            .build()
            .expect("legal configuration")
    }

    #[test]
    fn validated_cache_serves_repeat_reads_without_data_fetches() {
        use crate::client::WeakRepOptions;
        let mut h = cache_tier_harness(75, WeakRepOptions::validated());
        let suite = h.suite_id();
        h.write(suite, b"hot".to_vec()).expect("write");
        for _ in 0..4 {
            let r = h.read(suite).expect("read");
            assert_eq!(r.version, Version(1));
            assert_eq!(r.value, b"hot".to_vec());
        }
        let stats = h.client_stats(SiteId(3)).expect("client");
        // The first read fetched and filled the cache; every later read
        // was quorum-confirmed and served locally, with zero data rpcs.
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(stats.reads_fetched, 1, "one data fetch across four reads");
    }

    #[test]
    fn lease_reads_are_quorum_free_and_a_write_invalidates() {
        use crate::client::WeakRepOptions;
        let mut h = cache_tier_harness(76, WeakRepOptions::lease(SimDuration::from_secs(10)));
        let suite = h.suite_id();
        h.write(suite, b"v1".to_vec()).expect("write");
        let r = h.read(suite).expect("read");
        assert_eq!(r.value, b"v1".to_vec());
        // Inside the lease: the read touches no wire at all.
        let sent_before = h.net_stats().sent;
        let r = h.read(suite).expect("read");
        assert_eq!(r.value, b"v1".to_vec());
        assert_eq!(r.latency, SimDuration::ZERO, "lease reads are local");
        assert_eq!(h.net_stats().sent, sent_before, "zero messages sent");
        // A local write invalidates the lease: the next read must see the
        // new value, not serve the leased copy.
        h.write(suite, b"v2".to_vec()).expect("write");
        let r = h.read(suite).expect("read");
        assert_eq!(r.version, Version(2));
        assert_eq!(r.value, b"v2".to_vec());
        let stats = h.client_stats(SiteId(3)).expect("client");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.lease_expiries, 0);
    }

    #[test]
    fn anti_entropy_gossip_refreshes_the_attached_weak_rep() {
        use crate::client::WeakRepOptions;
        // Two clients: a write by one leaves the other's attached cache
        // behind; the gossip round pushes the committed state at it.
        let mut h = HarnessBuilder::new()
            .seed(77)
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .site(SiteSpec::server(1))
            .client()
            .client()
            .quorum(QuorumSpec::new(2, 2))
            .client_options(ClientOptions {
                weak_rep: Some(WeakRepOptions::validated()),
                ..ClientOptions::default()
            })
            .anti_entropy(SimDuration::from_millis(500))
            .build()
            .expect("legal configuration");
        let suite = h.suite_id();
        let (reader, writer) = (SiteId(3), SiteId(4));
        h.write_from(writer, suite, b"w1".to_vec()).expect("write");
        // The reader warms its cache at v1…
        let r = h.read_from(reader, suite).expect("read");
        assert_eq!(r.version, Version(1));
        // …the writer moves on to v2…
        h.write_from(writer, suite, b"w2".to_vec()).expect("write");
        // …and a gossip round refreshes the reader's attached copy
        // without the reader issuing any operation.
        h.advance(SimDuration::from_secs(2));
        let pushes: u64 = SiteId::all(3)
            .map(|s| h.server_stats(s).expect("server").cache_pushes)
            .sum();
        assert!(pushes > 0, "gossip rounds push at attached weak reps");
        // The refreshed entry serves the next validated read locally:
        // a hit at v2 without any data fetch by the reader.
        let before = h.client_stats(reader).expect("client");
        let r = h.read_from(reader, suite).expect("read");
        assert_eq!(r.version, Version(2));
        assert_eq!(r.value, b"w2".to_vec());
        let after = h.client_stats(reader).expect("client");
        assert_eq!(after.cache_hits, before.cache_hits + 1);
        assert_eq!(after.reads_fetched, before.reads_fetched);
        h.stop_anti_entropy();
        h.run_until_quiet(1_000_000);
    }
}
