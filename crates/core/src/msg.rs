//! The wire protocol between clients and suite servers.
//!
//! Requests flow client → server, responses server → client; the
//! server-initiated messages are [`Msg::DecisionReq`], the participant's
//! recovery-time question to the write coordinator, and the anti-entropy
//! pair [`Msg::RepairPull`]/[`Msg::RepairState`], which travels between
//! representatives. Every request carries
//! the client's configuration generation so servers can reject requests
//! built against a superseded configuration ([`Msg::StaleConfig`]).

use bytes::Bytes;
use wv_storage::{ObjectId, Version};
use wv_txn::Vote;

use crate::suite::SuiteConfig;

/// Identifies one operation attempt, unique across the cluster.
///
/// Layout: `counter << 16 | client_site`. The counter-major ordering makes
/// req ids usable directly as wait-die timestamps (earlier operations are
/// "older"), and the low bits let a recovering participant find its
/// coordinator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReqId(pub u64);

impl ReqId {
    /// Builds a request id from a client-local counter and the client site.
    pub fn new(counter: u64, client_site: wv_net::SiteId) -> Self {
        assert!(counter < (1 << 48), "request counter exhausted");
        ReqId((counter << 16) | u64::from(client_site.0))
    }

    /// The coordinating client's site.
    pub fn coordinator(self) -> wv_net::SiteId {
        wv_net::SiteId((self.0 & 0xFFFF) as u16)
    }

    /// The client-local counter.
    pub fn counter(self) -> u64 {
        self.0 >> 16
    }
}

/// One staged install within a [`Msg::Prepare`].
#[derive(Clone, Debug, PartialEq)]
pub struct PrepareWrite {
    /// The suite the install belongs to.
    pub suite: ObjectId,
    /// The target object (the suite's data or config object).
    pub object: ObjectId,
    /// The version to install.
    pub version: Version,
    /// The contents.
    pub value: Bytes,
    /// The coordinator's configuration generation for this suite.
    pub generation: u64,
}

/// Why a representative refused to serve (see [`Msg::Refused`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefuseReason {
    /// Recovery detected interior WAL corruption: the replica's
    /// acknowledged state may have regressed, so it has surrendered its
    /// votes (reads, inquiries, and prepares all refuse) until
    /// anti-entropy repair completes a full state pull. Long-lived —
    /// clients should treat the site as dead, not busy.
    Quarantined,
    /// A transient disk problem (injected I/O error or sync stall) made
    /// the site unable to log the request. Short-lived.
    Disk,
}

/// Protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    // ---- version inquiry (the cheap "check the version number" round) ----
    /// Client asks a representative for its current version number.
    VersionReq {
        /// Suite being read.
        suite: ObjectId,
        /// Operation attempt.
        req: ReqId,
    },

    /// Representative's answer: committed version plus config generation.
    VersionResp {
        /// The suite inquired about.
        suite: ObjectId,
        /// The inquiring operation.
        req: ReqId,
        /// Committed version of the data object at this representative.
        version: Version,
        /// The representative's configuration generation for the suite.
        generation: u64,
    },

    // ---- content read ----
    /// Client fetches the contents from a chosen representative.
    ReadReq {
        /// The suite to read.
        suite: ObjectId,
        /// The reading operation.
        req: ReqId,
    },
    /// Contents response.
    ReadResp {
        /// The suite read.
        suite: ObjectId,
        /// The reading operation.
        req: ReqId,
        /// Version of the returned contents.
        version: Version,
        /// The contents.
        value: Bytes,
    },
    /// The object is commit-locked by an in-flight write; retry shortly.
    Busy {
        /// The suite that was busy.
        suite: ObjectId,
        /// The turned-away operation.
        req: ReqId,
    },
    /// The representative cannot serve at all right now — its disk is
    /// degraded. Unlike [`Msg::Busy`] (a transient lock conflict worth an
    /// immediate retry elsewhere), a refusal tells the client something is
    /// wrong with the *site*: treat it as a non-vote and route around it.
    Refused {
        /// The suite the request targeted.
        suite: ObjectId,
        /// The refused operation.
        req: ReqId,
        /// Why the site refused.
        reason: RefuseReason,
    },

    // ---- write (client-coordinated two-phase commit over the quorum) ----
    /// Stage-and-promise: install every entry of `writes` atomically at
    /// this site if told to commit. Ordinary writes carry one entry for
    /// the suite's data object; reconfigurations target the config
    /// object; multi-suite transactions batch one entry per suite this
    /// site serves.
    Prepare {
        /// The preparing operation.
        req: ReqId,
        /// The staged installs, applied all-or-nothing at this site.
        writes: Vec<PrepareWrite>,
        /// Wait-die age of the *operation* (first attempt's counter), so a
        /// retried write keeps its seniority and cannot be starved.
        lock_ts: u64,
    },
    /// Participant's vote on a prepare.
    PrepareVote {
        /// The (primary) suite of the prepared write.
        suite: ObjectId,
        /// The voting operation.
        req: ReqId,
        /// Yes or no.
        vote: Vote,
    },
    /// Coordinator decision: commit.
    Commit {
        /// The (primary) suite of the decided write.
        suite: ObjectId,
        /// The decided operation.
        req: ReqId,
    },
    /// Coordinator decision: abort. Also sent on timeouts; idempotent.
    Abort {
        /// The (primary) suite of the decided write.
        suite: ObjectId,
        /// The decided operation.
        req: ReqId,
    },
    /// Participant confirms the decision was applied.
    Ack {
        /// The (primary) suite of the decision.
        suite: ObjectId,
        /// The acknowledged operation.
        req: ReqId,
        /// True if the ack confirms a commit, false for an abort.
        committed: bool,
    },

    // ---- configuration (the replicated prefix) ----
    /// Client asks for the representative's current suite configuration.
    ConfigReq {
        /// The suite whose configuration is wanted.
        suite: ObjectId,
        /// The asking operation.
        req: ReqId,
    },
    /// The configuration.
    ConfigResp {
        /// The suite configured.
        suite: ObjectId,
        /// The asking operation.
        req: ReqId,
        /// The server's current configuration.
        config: SuiteConfig,
    },
    /// The request carried a stale generation; refresh via `ConfigReq`.
    StaleConfig {
        /// The suite whose configuration moved on.
        suite: ObjectId,
        /// The rejected operation.
        req: ReqId,
        /// The responding server's generation.
        generation: u64,
    },

    // ---- weak representatives ----
    /// Fire-and-forget cache fill for a weak representative; applied only
    /// if `version` is newer than what the weak representative holds.
    UpdateWeak {
        /// The suite whose cache is refreshed.
        suite: ObjectId,
        /// The version being offered.
        version: Version,
        /// The contents being offered.
        value: Bytes,
    },

    // ---- recovery ----
    /// A recovering participant asks the coordinator how `req` ended.
    DecisionReq {
        /// The (primary) suite of the in-doubt write.
        suite: ObjectId,
        /// The in-doubt operation.
        req: ReqId,
    },

    // ---- anti-entropy repair (server ↔ server) ----
    /// A representative asks a peer for its committed state of `suite`,
    /// either right after recovering or on a periodic gossip probe. The
    /// answer restores vote availability without waiting for a client
    /// write to happen to include the stale representative.
    RepairPull {
        /// The suite whose state is wanted.
        suite: ObjectId,
        /// The puller's committed version; the peer only answers when it
        /// holds something newer (unless `full`).
        have: Version,
        /// A quarantined replica rebuilding from scratch sets this: the
        /// peer answers with its state unconditionally, even when it holds
        /// nothing newer, because the answer itself is the puller's
        /// evidence that it has absorbed this peer's state.
        full: bool,
    },
    /// The peer's committed `(version, contents)` for the suite. Only
    /// committed state ever travels — a prepared-but-undecided write stays
    /// local — and the receiver installs monotonically, so repair can
    /// neither resurrect uncommitted data nor regress a version.
    RepairState {
        /// The suite repaired.
        suite: ObjectId,
        /// The sender's committed version.
        version: Version,
        /// The committed contents at that version.
        value: Bytes,
        /// The sender's committed configuration object — `(version,
        /// encoded bytes)` — included when answering a `full` pull. A
        /// replica rebuilding after losing its log to corruption may
        /// also have lost the suite's quorum geometry; rejoining with a
        /// pre-reconfiguration assignment would let non-intersecting
        /// quorums form, so the full sweep restores the configuration
        /// alongside the data.
        config: Option<(Version, Bytes)>,
    },
}

impl Msg {
    /// True for messages handled by a server (representative) node.
    pub fn is_server_bound(&self) -> bool {
        matches!(
            self,
            Msg::VersionReq { .. }
                | Msg::ReadReq { .. }
                | Msg::Prepare { .. }
                | Msg::Commit { .. }
                | Msg::Abort { .. }
                | Msg::ConfigReq { .. }
                | Msg::UpdateWeak { .. }
                | Msg::RepairPull { .. }
                | Msg::RepairState { .. }
        )
    }

    /// True for messages handled by a client node.
    pub fn is_client_bound(&self) -> bool {
        !self.is_server_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wv_net::SiteId;

    #[test]
    fn req_id_round_trips() {
        let r = ReqId::new(12345, SiteId(7));
        assert_eq!(r.coordinator(), SiteId(7));
        assert_eq!(r.counter(), 12345);
    }

    #[test]
    fn req_id_orders_by_counter_first() {
        let a = ReqId::new(1, SiteId(9));
        let b = ReqId::new(2, SiteId(0));
        assert!(a < b, "earlier counter must be older regardless of site");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn req_id_counter_bound() {
        let _ = ReqId::new(1 << 48, SiteId(0));
    }

    #[test]
    fn direction_classification_is_total() {
        let suite = ObjectId(1);
        let req = ReqId::new(1, SiteId(0));
        let msgs = [
            Msg::VersionReq { suite, req },
            Msg::VersionResp {
                suite,
                req,
                version: Version(0),
                generation: 1,
            },
            Msg::ReadReq { suite, req },
            Msg::Busy { suite, req },
            Msg::Refused {
                suite,
                req,
                reason: RefuseReason::Quarantined,
            },
            Msg::Refused {
                suite,
                req,
                reason: RefuseReason::Disk,
            },
            Msg::Commit { suite, req },
            Msg::Ack {
                suite,
                req,
                committed: true,
            },
            Msg::DecisionReq { suite, req },
            Msg::UpdateWeak {
                suite,
                version: Version(1),
                value: Bytes::new(),
            },
            Msg::RepairPull {
                suite,
                have: Version(0),
                full: false,
            },
            Msg::RepairState {
                suite,
                version: Version(1),
                value: Bytes::new(),
                config: None,
            },
        ];
        for m in msgs {
            assert_ne!(
                m.is_server_bound(),
                m.is_client_bound(),
                "message must belong to exactly one side: {m:?}"
            );
        }
    }
}
