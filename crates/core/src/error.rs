//! Operation outcomes.

use std::fmt;

use crate::quorum::QuorumError;

/// What kind of suite operation ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Quorum read.
    Read,
    /// Quorum write.
    Write,
    /// Configuration change (vote/quorum update through the old quorum).
    Reconfigure,
    /// Multi-suite atomic transaction (all writes commit or none).
    Transaction,
}

/// Why a suite operation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpError {
    /// Too few representatives reachable to assemble the required quorum
    /// within the timeout — the paper's "blocked" outcome.
    Unavailable {
        /// Which quorum could not be assembled.
        kind: OpKind,
    },
    /// The operation lost repeatedly to concurrent writers (every attempt
    /// was killed by lock conflict or version race).
    Conflict,
    /// A commit decision was reached but not every quorum member
    /// acknowledged installation before the retry budget ran out. The
    /// write may be durable; the caller must not assume either way.
    Indeterminate,
    /// The requested configuration is illegal.
    IllegalConfig(QuorumError),
    /// The client does not know the suite.
    UnknownSuite,
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Unavailable { kind } => write!(f, "{kind:?} quorum unavailable"),
            OpError::Conflict => write!(f, "lost to concurrent writers after all retries"),
            OpError::Indeterminate => write!(f, "commit decision reached but not fully acked"),
            OpError::IllegalConfig(e) => write!(f, "illegal configuration: {e}"),
            OpError::UnknownSuite => write!(f, "unknown suite"),
        }
    }
}

impl std::error::Error for OpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OpError::Unavailable { kind: OpKind::Read }
            .to_string()
            .contains("Read"));
        assert!(OpError::Conflict.to_string().contains("concurrent"));
        assert!(OpError::Indeterminate
            .to_string()
            .contains("not fully acked"));
        assert!(OpError::UnknownSuite.to_string().contains("unknown"));
        let e = OpError::IllegalConfig(QuorumError::NoIntersection { total: 3 });
        assert!(e.to_string().contains("exceed total votes"));
    }
}
