//! Client-side suite operations.
//!
//! A [`ClientNode`] coordinates reads, writes, and reconfigurations:
//!
//! * **Read**: version inquiries to every representative until `r` votes
//!   answer; the highest version among the answers is current; contents
//!   are fetched from the cheapest representative (weak ones included)
//!   holding that version.
//! * **Write**: inquiry as above to learn the current version, then
//!   client-coordinated two-phase commit of `(current + 1, value)` at the
//!   cheapest write quorum. The commit decision is logged durably before
//!   any commit message leaves, so recovering participants always get a
//!   correct answer to their decision probes (presumed abort otherwise).
//! * **Reconfigure**: the same write path aimed at the suite's config
//!   object, installed under the *old* configuration's write quorum —
//!   exactly the paper's rule for changing vote assignments online.
//!
//! Every attempt uses a fresh request id (so late responses from a dead
//! attempt can never contaminate a live one) while keeping the operation's
//! original wait-die age (so retries gain seniority instead of starving).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use wv_net::{Node, NodeCtx, SiteId};
use wv_sim::audit::{AuditLog, AuditRecord, DecisionKind, SiteInput};
use wv_sim::telemetry::{TelemetryHub, TelemetryOptions};
use wv_sim::trace::{SpanId, SpanKind, SpanOutcome, SpanRecord, Tracer};
use wv_sim::{SimDuration, SimTime};
use wv_storage::{Container, ObjectId, Version};
use wv_txn::Vote;

use crate::error::{OpError, OpKind};
use crate::msg::{Msg, PrepareWrite, RefuseReason, ReqId};
use crate::quorum::{cheapest_quorum, cheapest_quorum_presorted, QuorumSpec};
use crate::suite::{config_object, data_object, SuiteConfig};
use crate::votes::VoteAssignment;

/// Tunables for client behaviour.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// How long each protocol phase may take before the attempt fails.
    /// With health tracking on this is the *ceiling*; the effective
    /// timeout adapts to observed RTTs (see [`HealthOptions`]).
    pub phase_timeout: SimDuration,
    /// Base delay before retrying a failed attempt: the first retry's
    /// step, doubled per further attempt up to [`Self::backoff_cap`],
    /// plus deterministic seeded jitter.
    pub backoff: SimDuration,
    /// Ceiling for the exponential backoff (before jitter).
    pub backoff_cap: SimDuration,
    /// Attempts per operation before reporting failure.
    pub max_attempts: u32,
    /// Commit resend rounds before reporting [`OpError::Indeterminate`].
    pub commit_resend_limit: u32,
    /// After a successful read fetched from elsewhere, refresh the weak
    /// representative co-located with this client.
    pub update_local_weak: bool,
    /// After a successful write, push the new value to every weak
    /// representative of the suite (the paper's background-update option).
    pub push_weak_on_write: bool,
    /// Fetch contents from the cheapest representative *in parallel* with
    /// the version inquiry, completing immediately if it proves current —
    /// the paper's validated-cache read. When off, the fetch starts only
    /// after the inquiry quorum settles.
    pub optimistic_fetch: bool,
    /// How quorum members and fetch targets are chosen.
    pub quorum_policy: QuorumPolicy,
    /// Self-healing layer (per-site health tracking, adaptive timeouts,
    /// suspicion-aware routing, hedged reads). `None` — the default —
    /// disables all of it, leaving the classic fixed-timeout behaviour
    /// byte-for-byte untouched.
    pub health: Option<HealthOptions>,
    /// Outstanding-operation window. `Some(k)` lets at most `k` operations
    /// progress over the net at once; further submissions queue (FIFO,
    /// request ids allocated at submission) and launch as slots free up.
    /// `None` — the default — never queues, leaving the classic
    /// caller-paced behaviour byte-for-byte untouched.
    pub pipeline_depth: Option<usize>,
    /// Attached weak representative: a client-side cache tier holding one
    /// committed `(version, contents)` per suite (zero votes, zero quorum
    /// weight — the paper's weak representative, attached to the client
    /// itself). See [`WeakRepOptions`] for the validated and lease modes.
    /// `None` — the default — disables the tier and leaves the classic
    /// read path byte-for-byte untouched.
    pub weak_rep: Option<WeakRepOptions>,
}

/// Tunables for the client's attached weak representative (cache tier).
///
/// Two serving modes:
///
/// * **Validated** (`lease: None`): a read still runs its version-inquiry
///   quorum, but when the quorum confirms the cached copy is current the
///   read completes from the local copy with **zero data RPCs** — and
///   concurrent pipelined reads to the same suite piggyback on one
///   in-flight inquiry, so a single round of version checks amortises
///   over the whole window. Quorum intersection makes this exactly as
///   fresh as a classic quorum read.
/// * **Lease** (`lease: Some(ttl)`): a quorum-validated read grants the
///   cache entry a sim-clock lease; until it expires, reads on the suite
///   are served locally with **no network traffic at all**. The lease is
///   the staleness bound: a served value can lag the newest commit by at
///   most `ttl`. Leases are invalidated by any local write to the suite
///   and by configuration adoption, and are *not* extended by lease-served
///   reads (only a fresh quorum validation re-arms one).
#[derive(Clone, Debug)]
pub struct WeakRepOptions {
    /// Lease TTL: `None` — validated mode; `Some(ttl)` — lease mode with a
    /// staleness bound of `ttl`.
    pub lease: Option<SimDuration>,
}

impl WeakRepOptions {
    /// Validated mode: quorum-confirmed currency, zero data RPCs on a hit.
    pub fn validated() -> Self {
        WeakRepOptions { lease: None }
    }

    /// Lease mode: fully quorum-free reads within a `ttl` staleness bound.
    pub fn lease(ttl: SimDuration) -> Self {
        WeakRepOptions { lease: Some(ttl) }
    }
}

/// Tunables for the client's self-healing layer.
///
/// The health tracker keeps, per site, an EWMA of observed round-trip
/// times and an accrual-style suspicion score: every response resets the
/// score, every unanswered phase bumps it, and crossing the threshold
/// marks the site *suspected*. Suspected sites are demoted to the back of
/// every cost-ranked order (fetch candidates, optimistic-fetch target,
/// write quorums) until they answer again.
#[derive(Clone, Debug)]
pub struct HealthOptions {
    /// EWMA smoothing factor: weight of the newest RTT sample, in (0, 1].
    pub rtt_alpha: f64,
    /// Suspicion score at which a site becomes suspected.
    pub suspicion_threshold: f64,
    /// How much one unanswered phase adds to a site's suspicion.
    pub suspicion_step: f64,
    /// Adaptive phase timeout = multiplier × the slowest contacted site's
    /// EWMA RTT, clamped to `[min_timeout, phase_timeout]`.
    pub timeout_multiplier: f64,
    /// Floor for the adaptive timeout, so a run of fast responses cannot
    /// collapse the timeout to nothing.
    pub min_timeout: SimDuration,
    /// Hedged reads: after an adaptive delay, contact the next-cheapest
    /// fetch candidate instead of waiting for the full phase timeout.
    pub hedge: bool,
    /// The hedge fires after multiplier × the fetch target's EWMA RTT.
    pub hedge_multiplier: f64,
}

impl Default for HealthOptions {
    fn default() -> Self {
        HealthOptions {
            rtt_alpha: 0.3,
            suspicion_threshold: 2.0,
            suspicion_step: 1.0,
            timeout_multiplier: 6.0,
            min_timeout: SimDuration::from_millis(300),
            hedge: true,
            hedge_multiplier: 3.0,
        }
    }
}

/// Per-site health state kept by the client's tracker.
#[derive(Clone, Copy, Debug)]
struct SiteHealth {
    /// EWMA of observed round-trip times, in milliseconds. Seeded from
    /// the static cost (a one-way mean) so the first adaptive decisions
    /// are sane before any sample arrives.
    rtt_ms: f64,
    /// Accrual suspicion score; reset by any response.
    suspicion: f64,
    /// Whether the score has crossed the threshold.
    suspected: bool,
}

/// Selection policy for quorum members and fetch targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumPolicy {
    /// Prefer the cheapest sites (the paper's choice).
    CheapestFirst,
    /// Choose uniformly at random — the ablation baseline showing what the
    /// cost-aware choice buys.
    Random,
    /// Cheapest-first with deterministic round-robin rotation among
    /// cost-equivalent sites, so read traffic spreads across equally cheap
    /// representatives instead of hammering the one with the lowest id.
    /// The rotated order stays sorted by cost, so every quorum it yields
    /// is still minimal-cost; only tie-breaks move. Rotation is seeded via
    /// [`wv_sim::derive_seed`] and advances once per decision — no RNG
    /// draws, so runs stay bit-identical at any worker count.
    LoadBalanced,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            phase_timeout: SimDuration::from_secs(5),
            backoff: SimDuration::from_millis(40),
            backoff_cap: SimDuration::from_secs(2),
            max_attempts: 6,
            commit_resend_limit: 5,
            update_local_weak: true,
            push_weak_on_write: false,
            optimistic_fetch: true,
            quorum_policy: QuorumPolicy::CheapestFirst,
            health: None,
            pipeline_depth: None,
            weak_rep: None,
        }
    }
}

/// Client-side counters for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Reads completed by the optimistic parallel fetch (cache hits).
    pub reads_cache_hit: u64,
    /// Reads that needed a separate fetch round (cache misses).
    pub reads_fetched: u64,
    /// Attempts that failed and were retried.
    pub retries: u64,
    /// Phase timeouts that fired against a live operation (each marks a
    /// protocol round that did not complete in time, whatever happened
    /// next — retry, candidate switch, commit resend, or failure).
    pub timeouts: u64,
    /// Operations abandoned because the attempt budget ran out.
    pub attempts_exhausted: u64,
    /// Configuration refreshes performed.
    pub config_refreshes: u64,
    /// Quorum-plan cache lookups answered from the cache.
    pub plan_cache_hits: u64,
    /// Quorum-plan cache lookups that had to (re)build the plan.
    pub plan_cache_misses: u64,
    /// Sites whose suspicion score crossed the threshold (per crossing,
    /// not per site — a site can be suspected, cleared, and re-suspected).
    pub suspicions_raised: u64,
    /// Decisions where suspected sites were demoted out of the order the
    /// cost ranking alone would have used.
    pub reroutes: u64,
    /// Hedged fetches launched.
    pub hedges_fired: u64,
    /// Reads completed by the hedge target rather than the original
    /// fetch candidate.
    pub hedge_wins: u64,
    /// Reads served from the attached weak representative: the local copy
    /// was quorum-confirmed current (validated mode) or inside a live
    /// lease (lease mode). Zero data RPCs each.
    pub cache_hits: u64,
    /// Cache-tier reads that had to fetch contents over the network (cold
    /// or stale entry, or an expired lease).
    pub cache_misses: u64,
    /// Lease-mode serves refused because the lease had lapsed by the time
    /// the read started (the read then re-validated over the network).
    pub lease_expiries: u64,
    /// Reads that coalesced onto another read's in-flight version inquiry
    /// for the same suite instead of fanning out their own `VersionReq`s.
    pub piggybacked_inquiries: u64,
    /// `Busy` answers received (transient commit-lock conflicts; the
    /// client retries the next candidate immediately).
    pub refused_busy: u64,
    /// `Refused(Quarantined)` answers: the site surrendered its votes
    /// over disk corruption. Treated as long-dead — suspicion slams to
    /// the threshold so routing demotes the site at once.
    pub refused_quarantined: u64,
    /// `Refused(Disk)` answers: transient I/O errors or sync stalls.
    pub refused_disk: u64,
}

/// What a finished operation produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpSuccess {
    /// The version read or installed (the first suite's, for
    /// transactions).
    pub version: Version,
    /// The contents, for reads.
    pub value: Option<Bytes>,
    /// Per-suite versions installed by a multi-suite transaction
    /// (empty for single-suite operations).
    pub multi: Vec<(ObjectId, Version)>,
}

/// The record of one finished operation.
#[derive(Clone, Debug)]
pub struct CompletedOp {
    /// The request id of the final attempt.
    pub req: ReqId,
    /// Operation type.
    pub kind: OpKind,
    /// The suite operated on.
    pub suite: ObjectId,
    /// Success or failure.
    pub outcome: Result<OpSuccess, OpError>,
    /// When the operation started.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// How many attempts it took.
    pub attempts: u32,
}

impl CompletedOp {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

#[derive(Clone, Debug)]
enum Phase {
    Inquire {
        versions: BTreeMap<SiteId, Version>,
        max_gen: u64,
        /// The optimistic-fetch target, if one was contacted.
        guess: Option<SiteId>,
        /// The optimistic fetch's answer, if it arrived before the quorum.
        early: Option<(SiteId, Version, Bytes)>,
    },
    Fetch {
        current: Version,
        candidates: Vec<SiteId>,
        idx: usize,
        /// The hedge target contacted for this leg, if the hedge fired.
        hedged: Option<SiteId>,
    },
    Prepare {
        new_version: Version,
        quorum: Vec<SiteId>,
        yes: BTreeSet<SiteId>,
    },
    CommitWait {
        new_version: Version,
        quorum: Vec<SiteId>,
        acked: BTreeSet<SiteId>,
        resends: u32,
    },
    RefreshConfig,
    /// Cache-tier read waiting on another read's in-flight version
    /// inquiry for the same suite (the piggybacked/coalesced inquiry).
    /// Resolved when the leader's quorum settles; failed over to a fresh
    /// attempt if the leader dies first.
    Piggyback {
        /// The read whose inquiry this one joined.
        leader: ReqId,
    },
    /// Transaction: collecting version quorums for every suite.
    MultiInquire {
        per_suite: BTreeMap<ObjectId, BTreeMap<SiteId, Version>>,
    },
    /// Transaction: prepares out to the participant union.
    MultiPrepare {
        versions: Vec<(ObjectId, Version)>,
        participants: Vec<SiteId>,
        yes: BTreeSet<SiteId>,
    },
    /// Transaction: commit decided, waiting for every participant's ack.
    MultiCommit {
        versions: Vec<(ObjectId, Version)>,
        participants: Vec<SiteId>,
        acked: BTreeSet<SiteId>,
        resends: u32,
    },
}

#[derive(Clone, Debug)]
struct OpState {
    kind: OpKind,
    suite: ObjectId,
    /// Value for writes.
    payload: Option<Bytes>,
    /// Requested change for reconfigurations.
    change: Option<(VoteAssignment, QuorumSpec)>,
    /// The evolved config, decided when the prepare is built.
    new_config: Option<SuiteConfig>,
    /// The per-suite values of a multi-suite transaction.
    multi_payloads: Vec<(ObjectId, Bytes)>,
    /// The per-site versions seen during a reconfiguration's inquiry, so
    /// the prepare can bring stale new-quorum members current.
    reconfig_versions: BTreeMap<SiteId, Version>,
    /// The data version a reconfiguration re-publishes the contents at
    /// (current + 1). The bump makes the reconfiguration conflict with —
    /// and therefore serialise against — any concurrent data write.
    reconfig_bump: Option<Version>,
    started: SimTime,
    /// When the current attempt's inquiry went out; responses arriving
    /// during the inquiry phase are RTT samples relative to this.
    attempt_started: SimTime,
    attempts: u32,
    /// Wait-die age: the counter of the operation's *first* request id.
    lock_ts: u64,
    /// Phase sequence; timers carry the value current when set and are
    /// ignored if the operation has moved on.
    seq: u64,
    phase: Phase,
    /// Span bookkeeping; `None` unless tracing is enabled.
    trace: Option<OpTrace>,
}

/// Span bookkeeping for one traced operation. Lives inside [`OpState`] so
/// it follows the operation across retries (which change the request id).
/// `None` whenever tracing is disabled — the untraced path allocates and
/// touches nothing.
#[derive(Clone, Debug)]
struct OpTrace {
    /// The op's identity in the trace: the *first* attempt's request id,
    /// stable across retries.
    op: u64,
    /// The suite the op targets, stamped on every span under the root.
    suite: u64,
    /// The root span, open from start to completion.
    root: SpanId,
    /// The current phase span (inquiry / fetch / prepare / commit).
    phase: Option<SpanId>,
    /// Open per-site request/response spans of the current phase
    /// (version inquiries, prepares, commit acks).
    rpcs: Vec<(SiteId, SpanId)>,
    /// Open content-fetch legs: the optimistic fetch, the current fetch
    /// candidate, and any hedge — closed by the `ReadResp` they provoke.
    legs: Vec<(SiteId, SpanId)>,
}

/// Maps an operation error to the span outcome recorded for it.
fn op_err_outcome(err: &OpError) -> SpanOutcome {
    match err {
        OpError::Conflict => SpanOutcome::Conflict,
        OpError::Unavailable { .. } => SpanOutcome::Timeout,
        OpError::Indeterminate => SpanOutcome::Timeout,
        _ => SpanOutcome::Err,
    }
}

#[derive(Clone, Copy, Debug)]
enum TimerKind {
    PhaseTimeout,
    Retry,
    /// A hedge delay expired while a fetch is outstanding. Structurally
    /// distinct from [`TimerKind::PhaseTimeout`] so a hedge firing — or a
    /// hedged request timing out alongside the original — can never reach
    /// the timeout bookkeeping and double-count `ClientStats::timeouts`.
    Hedge,
}

#[derive(Clone, Copy, Debug)]
struct TimerEntry {
    req: ReqId,
    seq: u64,
    kind: TimerKind,
}

/// Tag bit distinguishing client timer tokens from server ones, so a
/// composite node can route timer callbacks unambiguously.
pub const CLIENT_TIMER_TAG: u64 = 1 << 63;

/// A memoized quorum plan: the suite's sites in `(cost, site id)` order,
/// valid for one configuration generation.
///
/// Every cheapest-first decision — the optimistic-fetch target, the fetch
/// candidate order, the write quorum — is a filter or prefix of this one
/// sorted order, so caching it removes the per-decision cost sort from the
/// hot path. Keyed implicitly on the policy (only [`QuorumPolicy::
/// CheapestFirst`] consults it; the random ablation draws fresh costs per
/// decision and must bypass) and invalidated whenever the client adopts a
/// new configuration.
#[derive(Clone, Debug)]
struct QuorumPlan {
    generation: u64,
    /// All sites of the assignment (weak included), cheapest-first.
    /// Shared, so handing it to a decision is one refcount bump instead
    /// of a per-op `Vec` clone.
    site_order: Arc<[SiteId]>,
    /// Round-robin cursor for [`QuorumPolicy::LoadBalanced`]: seeded from
    /// `(site, generation)` via `derive_seed`, advanced once per decision.
    rr: u64,
}

/// One suite's entry in the client's attached weak representative: the
/// newest committed `(version, contents)` a quorum has vouched for, plus
/// the lease deadline when lease mode granted one.
#[derive(Clone, Debug)]
struct CacheEntry {
    version: Version,
    value: Bytes,
    /// Serve locally without any network until this instant (exclusive);
    /// `None` — no live lease (validated mode, or lease lapsed/revoked).
    lease_until: Option<SimTime>,
}

/// A client node: starts operations, reacts to responses, records results.
pub struct ClientNode {
    site: SiteId,
    configs: HashMap<ObjectId, SuiteConfig>,
    /// Mean access cost per site (typically the mean link latency),
    /// driving cheapest-first quorum selection.
    costs: Vec<f64>,
    /// Memoized cost-sorted site orders, one per suite configuration.
    plans: HashMap<ObjectId, QuorumPlan>,
    /// Per-site health (EWMA RTT + suspicion), indexed like `costs`.
    /// Maintained only when `options.health` is set.
    health: Vec<SiteHealth>,
    options: ClientOptions,
    next_counter: u64,
    next_timer: u64,
    ops: HashMap<ReqId, OpState>,
    timers: HashMap<u64, TimerEntry>,
    /// Operations launched and not yet finished (excludes queued ones).
    active: usize,
    /// Submissions waiting for a pipeline slot, in submission order.
    queue: VecDeque<ReqId>,
    /// Per-site counters of data requests actually sent (fetch legs,
    /// hedges, prepares), indexed like `costs` — the load the policy
    /// choice distributes.
    site_load: Vec<u64>,
    /// The attached weak representative's per-suite entries. Touched only
    /// when `options.weak_rep` is set.
    cache: HashMap<ObjectId, CacheEntry>,
    /// Per suite, the read currently leading a version inquiry plus the
    /// reads piggybacked on it. Touched only when `options.weak_rep` is
    /// set; entries are validated against the live op table before use,
    /// so a stale leader id can never capture a new read.
    inquiry_leaders: HashMap<ObjectId, (ReqId, Vec<ReqId>)>,
    /// Durable commit-decision log (presumed abort for anything absent).
    decisions: Container,
    decided_commit: BTreeSet<ReqId>,
    /// Finished operations, in completion order. Harnesses drain this.
    pub completed: Vec<CompletedOp>,
    /// Counters.
    pub stats: ClientStats,
    /// Deterministic span recorder; `None` (the default) disables tracing
    /// and leaves the classic path byte-for-byte untouched. A tracer only
    /// ever reads the virtual clock — never the RNG, never the effects —
    /// so a traced run stays message-identical to an untraced one.
    tracer: Option<Tracer>,
    /// Quorum-decision audit log; `None` (the default) disables auditing
    /// under the same contract as `tracer`: hooks read only planner state
    /// that is already computed, so an audited run stays
    /// message-identical to an unaudited one.
    audit: Option<AuditLog>,
    /// Windowed per-site telemetry; `None` (the default) disables it,
    /// same contract as `tracer` and `audit`.
    telemetry: Option<TelemetryHub>,
    /// Scratch for auditing: the rotation cursor the last
    /// [`Self::decision_order`] call decided under (0 outside the
    /// load-balanced policy).
    last_cursor: u64,
    /// Scratch for auditing: whether the last [`Self::reorder_by_health`]
    /// call actually changed the order.
    last_reroute: bool,
}

fn arm_timer(
    timers: &mut HashMap<u64, TimerEntry>,
    next_timer: &mut u64,
    req: ReqId,
    seq: u64,
    kind: TimerKind,
    delay: SimDuration,
    ctx: &mut NodeCtx<'_, Msg>,
) {
    let token = CLIENT_TIMER_TAG | *next_timer;
    *next_timer += 1;
    timers.insert(token, TimerEntry { req, seq, kind });
    ctx.set_timer(delay, token);
}

fn site_cost(costs: &[f64], site: SiteId) -> f64 {
    costs.get(site.index()).copied().unwrap_or(f64::MAX)
}

/// Seed salt for the load-balanced rotation cursor.
const LB_SALT: u64 = 0x10AD_BA1A_7C3D_5EED;

/// Rotates each maximal run of equal-cost sites in a cost-sorted order by
/// `rr` positions. The result is still sorted by `(cost)` — only the
/// tie-break order inside each run changes — so a greedy quorum over it is
/// exactly as cheap as over the input.
fn rotate_cost_ties(order: &[SiteId], costs: &[f64], rr: u64) -> Arc<[SiteId]> {
    let mut out: Vec<SiteId> = Vec::with_capacity(order.len());
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && site_cost(costs, order[j]) == site_cost(costs, order[i]) {
            j += 1;
        }
        let run = &order[i..j];
        let k = (rr % run.len() as u64) as usize;
        out.extend_from_slice(&run[k..]);
        out.extend_from_slice(&run[..k]);
        i = j;
    }
    Arc::from(out)
}

/// Sites reporting `current`, sorted cheapest-first.
fn current_holders(
    versions: &BTreeMap<SiteId, Version>,
    current: Version,
    costs: &[f64],
) -> Vec<SiteId> {
    let mut candidates: Vec<SiteId> = versions
        .iter()
        .filter(|(_, v)| **v == current)
        .map(|(s, _)| *s)
        .collect();
    candidates.sort_by(|a, b| {
        site_cost(costs, *a)
            .partial_cmp(&site_cost(costs, *b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    candidates
}

/// Sites reporting `current`, as an order-preserving filter of the cached
/// plan — identical to [`current_holders`] because the plan already holds
/// every site sorted by `(cost, id)`.
fn holders_in_plan_order(
    versions: &BTreeMap<SiteId, Version>,
    current: Version,
    order: &[SiteId],
) -> Vec<SiteId> {
    order
        .iter()
        .copied()
        .filter(|s| versions.get(s) == Some(&current))
        .collect()
}

impl ClientNode {
    /// Creates a client at `site` knowing `configs`, with per-site costs.
    pub fn new(
        site: SiteId,
        configs: Vec<SuiteConfig>,
        costs: Vec<f64>,
        options: ClientOptions,
    ) -> Self {
        // Seed each site's RTT estimate from its static cost (a one-way
        // mean latency, so the round trip is roughly twice that).
        let health = costs
            .iter()
            .map(|c| SiteHealth {
                rtt_ms: 2.0 * c.clamp(0.0, 1e12),
                suspicion: 0.0,
                suspected: false,
            })
            .collect();
        let site_load = vec![0; costs.len()];
        ClientNode {
            site,
            configs: configs.into_iter().map(|c| (c.suite, c)).collect(),
            costs,
            plans: HashMap::new(),
            health,
            options,
            next_counter: 1,
            next_timer: 1,
            ops: HashMap::new(),
            timers: HashMap::new(),
            active: 0,
            queue: VecDeque::new(),
            site_load,
            cache: HashMap::new(),
            inquiry_leaders: HashMap::new(),
            decisions: Container::new(),
            decided_commit: BTreeSet::new(),
            completed: Vec::new(),
            stats: ClientStats::default(),
            tracer: None,
            audit: None,
            telemetry: None,
            last_cursor: 0,
            last_reroute: false,
        }
    }

    /// Turns on span recording. Idempotent; spans accumulate until drained
    /// with [`Self::take_trace`].
    pub fn enable_tracing(&mut self) {
        if self.tracer.is_none() {
            self.tracer = Some(Tracer::new(self.site.0));
        }
    }

    /// Whether span recording is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Drains the recorded spans (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<SpanRecord> {
        self.tracer.as_mut().map(Tracer::take).unwrap_or_default()
    }

    /// Turns on quorum-decision auditing. Idempotent; records accumulate
    /// until drained with [`Self::take_audit`].
    pub fn enable_audit(&mut self) {
        if self.audit.is_none() {
            self.audit = Some(AuditLog::new(self.site.0));
        }
    }

    /// Whether decision auditing is on.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Drains the recorded decisions (empty when auditing is off).
    pub fn take_audit(&mut self) -> Vec<AuditRecord> {
        self.audit.as_mut().map(AuditLog::take).unwrap_or_default()
    }

    /// Turns on windowed telemetry. Idempotent; windows accumulate until
    /// drained with [`Self::take_telemetry`].
    pub fn enable_telemetry(&mut self, options: TelemetryOptions) {
        if self.telemetry.is_none() {
            self.telemetry = Some(TelemetryHub::new(options));
        }
    }

    /// Whether telemetry collection is on.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Takes the telemetry hub for merging (None when telemetry is off).
    pub fn take_telemetry(&mut self) -> Option<TelemetryHub> {
        self.telemetry.take()
    }

    // ---- tracing hooks -------------------------------------------------
    //
    // Every hook is a no-op when `tracer` is `None`; none of them touch
    // the RNG or emit effects, so tracing cannot perturb the protocol.

    /// Opens the root span for a newly started operation.
    fn trace_op_start(&mut self, req: ReqId, now: SimTime) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        let kind = match st.kind {
            OpKind::Read => SpanKind::Read,
            OpKind::Write => SpanKind::Write,
            OpKind::Reconfigure => SpanKind::Reconfigure,
            OpKind::Transaction => SpanKind::Transaction,
        };
        let root = tr.start(kind, st.suite.0, req.0, None, None, 0, now);
        st.trace = Some(OpTrace {
            op: req.0,
            suite: st.suite.0,
            root,
            phase: None,
            rpcs: Vec::new(),
            legs: Vec::new(),
        });
    }

    /// Opens a phase span under the op's root, defensively closing any
    /// phase still open (a retry abandoning a half-finished phase).
    fn trace_begin_phase(&mut self, req: ReqId, kind: SpanKind, now: SimTime) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get_mut(&req).and_then(|st| st.trace.as_mut()) else {
            return;
        };
        for (_, id) in t.rpcs.drain(..) {
            tr.end(id, now, SpanOutcome::Unanswered);
        }
        for (_, id) in t.legs.drain(..) {
            tr.end(id, now, SpanOutcome::Unanswered);
        }
        if let Some(p) = t.phase.take() {
            tr.end(p, now, SpanOutcome::Unanswered);
        }
        t.phase = Some(tr.start(kind, t.suite, t.op, Some(t.root), None, 0, now));
    }

    /// Opens a per-site request/response span under the current phase.
    fn trace_add_rpc(&mut self, req: ReqId, site: SiteId, now: SimTime) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get_mut(&req).and_then(|st| st.trace.as_mut()) else {
            return;
        };
        let id = tr.start(SpanKind::Rpc, t.suite, t.op, t.phase, Some(site.0), 0, now);
        t.rpcs.push((site, id));
    }

    /// Opens a content-fetch leg (`kind` is `Rpc` for a regular leg,
    /// `Hedge` for a hedge) under the current phase.
    fn trace_add_leg(&mut self, req: ReqId, site: SiteId, kind: SpanKind, now: SimTime) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get_mut(&req).and_then(|st| st.trace.as_mut()) else {
            return;
        };
        let id = tr.start(kind, t.suite, t.op, t.phase, Some(site.0), 0, now);
        t.legs.push((site, id));
    }

    /// Closes the open request/response span aimed at `site`, if any.
    fn trace_end_rpc(
        &mut self,
        req: ReqId,
        site: SiteId,
        now: SimTime,
        outcome: SpanOutcome,
        detail: u64,
    ) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get_mut(&req).and_then(|st| st.trace.as_mut()) else {
            return;
        };
        if let Some(pos) = t.rpcs.iter().position(|(s, _)| *s == site) {
            let (_, id) = t.rpcs.remove(pos);
            tr.end_with_detail(id, now, outcome, detail);
        }
    }

    /// Closes the open fetch leg aimed at `site`, if any.
    fn trace_end_leg(
        &mut self,
        req: ReqId,
        site: SiteId,
        now: SimTime,
        outcome: SpanOutcome,
        detail: u64,
    ) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get_mut(&req).and_then(|st| st.trace.as_mut()) else {
            return;
        };
        if let Some(pos) = t.legs.iter().position(|(s, _)| *s == site) {
            let (_, id) = t.legs.remove(pos);
            tr.end_with_detail(id, now, outcome, detail);
        }
    }

    /// Closes every open leg with `outcome` (phase timeout hit the fetch).
    fn trace_timeout_legs(&mut self, req: ReqId, now: SimTime) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get_mut(&req).and_then(|st| st.trace.as_mut()) else {
            return;
        };
        for (_, id) in t.legs.drain(..) {
            tr.end(id, now, SpanOutcome::Timeout);
        }
    }

    /// Closes the current phase span; still-open RPCs and legs end with
    /// `loose` (they never answered, or their answer no longer matters).
    fn trace_close_phase(&mut self, req: ReqId, now: SimTime, outcome: SpanOutcome) {
        let loose = match outcome {
            SpanOutcome::Ok => SpanOutcome::Lost,
            SpanOutcome::Timeout => SpanOutcome::Timeout,
            _ => SpanOutcome::Unanswered,
        };
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get_mut(&req).and_then(|st| st.trace.as_mut()) else {
            return;
        };
        for (_, id) in t.rpcs.drain(..) {
            tr.end(id, now, loose);
        }
        for (_, id) in t.legs.drain(..) {
            tr.end(id, now, loose);
        }
        if let Some(p) = t.phase.take() {
            tr.end(p, now, outcome);
        }
    }

    /// Closes the phase span of an attempt whose `OpState` is already out
    /// of the map (a retry in flight); the root stays open.
    fn trace_close_attempt(&mut self, st: &mut OpState, now: SimTime, outcome: SpanOutcome) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = st.trace.as_mut() else {
            return;
        };
        let loose = match outcome {
            SpanOutcome::Ok => SpanOutcome::Lost,
            SpanOutcome::Timeout => SpanOutcome::Timeout,
            _ => SpanOutcome::Unanswered,
        };
        for (_, id) in t.rpcs.drain(..) {
            tr.end(id, now, loose);
        }
        for (_, id) in t.legs.drain(..) {
            tr.end(id, now, loose);
        }
        if let Some(p) = t.phase.take() {
            tr.end(p, now, outcome);
        }
    }

    /// Closes the phase and root spans of an operation that just finished
    /// (the `OpState` is already out of the map).
    fn trace_finish_op(&mut self, st: &mut OpState, now: SimTime, outcome: SpanOutcome) {
        self.trace_close_attempt(st, now, outcome);
        if let (Some(tr), Some(t)) = (self.tracer.as_mut(), st.trace.as_ref()) {
            tr.end(t.root, now, outcome);
        }
    }

    /// Records the durable decision-log append as an instantaneous
    /// write-ahead-log event under the op's root.
    fn trace_decision_logged(&mut self, req: ReqId, now: SimTime) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get(&req).and_then(|st| st.trace.as_ref()) else {
            return;
        };
        tr.event(
            SpanKind::WalWrite,
            t.suite,
            t.op,
            Some(t.root),
            None,
            0,
            now,
        );
    }

    /// Records an instantaneous cache-tier event (`CacheHit` on a local
    /// serve, `CacheRefresh` on a fill from the network) under the op's
    /// root span.
    fn trace_cache_event(&mut self, req: ReqId, kind: SpanKind, detail: u64, now: SimTime) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let Some(t) = self.ops.get(&req).and_then(|st| st.trace.as_ref()) else {
            return;
        };
        tr.event(kind, t.suite, t.op, Some(t.root), None, detail, now);
    }

    // ---- attached weak representative (cache tier) ---------------------
    //
    // Every method below is reached only when `options.weak_rep` is set;
    // with the tier off the maps stay empty and the classic read path is
    // byte-for-byte untouched.

    /// Re-arms the suite's lease after a quorum validation (no-op in
    /// validated mode). Lease-served reads do not pass through here: only
    /// fresh quorum evidence extends a lease.
    fn grant_lease(&mut self, suite: ObjectId, now: SimTime) {
        let Some(ttl) = self.options.weak_rep.as_ref().and_then(|w| w.lease) else {
            return;
        };
        if let Some(entry) = self.cache.get_mut(&suite) {
            entry.lease_until = Some(now + ttl);
        }
    }

    /// Installs quorum-fresh contents into the attached weak
    /// representative (monotonically — a late stale fill can never regress
    /// the entry) and arms the lease in lease mode.
    fn fill_cache(&mut self, suite: ObjectId, version: Version, value: &Bytes, now: SimTime) {
        let Some(wr) = self.options.weak_rep.as_ref() else {
            return;
        };
        let lease_until = wr.lease.map(|ttl| now + ttl);
        match self.cache.get_mut(&suite) {
            Some(entry) if entry.version > version => {}
            Some(entry) => {
                entry.version = version;
                entry.value = value.clone();
                entry.lease_until = lease_until;
            }
            None => {
                self.cache.insert(
                    suite,
                    CacheEntry {
                        version,
                        value: value.clone(),
                        lease_until,
                    },
                );
            }
        }
    }

    /// Gossip refresh from a server's anti-entropy round: installs
    /// strictly newer committed state into the attached weak
    /// representative. The push carries single-server state, not a quorum
    /// answer, so it never grants or extends a lease — it only raises the
    /// version a later validated or lease-mode read will serve.
    fn gossip_fill(
        &mut self,
        from: SiteId,
        suite: ObjectId,
        version: Version,
        value: &Bytes,
        now: SimTime,
    ) {
        if self.options.weak_rep.is_none() {
            return;
        }
        let installed = match self.cache.get_mut(&suite) {
            Some(entry) if entry.version >= version => false,
            Some(entry) => {
                entry.version = version;
                entry.value = value.clone();
                true
            }
            None => {
                self.cache.insert(
                    suite,
                    CacheEntry {
                        version,
                        value: value.clone(),
                        lease_until: None,
                    },
                );
                true
            }
        };
        if installed {
            if let Some(tr) = self.tracer.as_mut() {
                tr.event(
                    SpanKind::CacheRefresh,
                    suite.0,
                    0,
                    None,
                    Some(from.0),
                    version.0,
                    now,
                );
            }
        }
    }

    /// Completes a read from the attached weak representative: zero data
    /// RPCs, counted as a cache hit.
    fn serve_from_cache(&mut self, req: ReqId, suite: ObjectId, ctx: &mut NodeCtx<'_, Msg>) {
        let Some(entry) = self.cache.get(&suite) else {
            return;
        };
        let (version, value) = (entry.version, entry.value.clone());
        self.stats.cache_hits += 1;
        self.trace_cache_event(req, SpanKind::CacheHit, version.0, ctx.now());
        self.complete(
            req,
            Ok(OpSuccess {
                version,
                value: Some(value),
                multi: Vec::new(),
            }),
            ctx,
        );
    }

    /// Called whenever an operation leaves the inquiry phase abnormally
    /// (timeout, retry, config refresh, crash-side cleanup): if it was
    /// leading a coalesced inquiry, detach its followers and restart each
    /// on a fresh attempt (the first restarted read becomes the new
    /// leader; the rest re-coalesce behind it).
    fn leader_abandoned(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        if self.options.weak_rep.is_none() {
            return;
        }
        let Some(suite) = self
            .inquiry_leaders
            .iter()
            .find(|(_, (leader, _))| *leader == req)
            .map(|(s, _)| *s)
        else {
            return;
        };
        let (_, followers) = self
            .inquiry_leaders
            .remove(&suite)
            .expect("entry just found");
        for f in followers {
            let live = self
                .ops
                .get(&f)
                .is_some_and(|st| matches!(st.phase, Phase::Piggyback { leader } if leader == req));
            if live {
                self.begin_attempt(f, ctx);
            }
        }
    }

    /// The leader's inquiry quorum settled on `current`: resolve every
    /// piggybacked read — from the cache when the entry proved current,
    /// via a fetch from `candidates` otherwise.
    fn settle_followers(
        &mut self,
        suite: ObjectId,
        leader: ReqId,
        current: Version,
        candidates: &[SiteId],
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        if self.options.weak_rep.is_none() {
            return;
        }
        let followers = match self.inquiry_leaders.get(&suite) {
            Some((l, _)) if *l == leader => {
                self.inquiry_leaders
                    .remove(&suite)
                    .expect("entry present")
                    .1
            }
            _ => return,
        };
        for f in followers {
            let live = self.ops.get(&f).is_some_and(
                |st| matches!(st.phase, Phase::Piggyback { leader: l } if l == leader),
            );
            if !live {
                continue;
            }
            if self.cache.get(&suite).is_some_and(|e| e.version >= current) {
                self.grant_lease(suite, ctx.now());
                self.serve_from_cache(f, suite, ctx);
            } else if candidates.is_empty() {
                self.fail_attempt(f, OpError::Unavailable { kind: OpKind::Read }, ctx);
            } else {
                // The follower's cache can't serve this version; fetch it
                // (the miss is counted when the fetch completes).
                self.enter_fetch(f, suite, current, candidates.to_vec(), ctx);
            }
        }
    }

    /// Per-decision costs: real costs for cheapest-first, fresh random
    /// draws for the random-policy ablation.
    fn effective_costs(&self, ctx: &mut NodeCtx<'_, Msg>) -> Vec<f64> {
        match self.options.quorum_policy {
            QuorumPolicy::CheapestFirst | QuorumPolicy::LoadBalanced => self.costs.clone(),
            QuorumPolicy::Random => (0..self.costs.len()).map(|_| ctx.rng().f64()).collect(),
        }
    }

    /// The memoized cost-sorted site order for `suite`'s current
    /// configuration, or `None` when the policy draws fresh costs per
    /// decision (random ablation) and the cache must be bypassed.
    ///
    /// A plan built for an older generation is rebuilt (and counted as a
    /// miss), so a stale entry can never leak into a decision even if an
    /// invalidation point were missed.
    fn cached_site_order(&mut self, suite: ObjectId) -> Option<Arc<[SiteId]>> {
        if self.options.quorum_policy == QuorumPolicy::Random {
            return None;
        }
        let cfg = self.configs.get(&suite)?;
        let generation = cfg.generation;
        if let Some(plan) = self.plans.get(&suite) {
            if plan.generation == generation {
                self.stats.plan_cache_hits += 1;
                // A refcount bump, not a `Vec` clone: the order is shared
                // with the cache for the decision's lifetime.
                return Some(Arc::clone(&plan.site_order));
            }
        }
        self.stats.plan_cache_misses += 1;
        let mut site_order = cfg.assignment.all_sites();
        site_order.sort_by(|a, b| {
            site_cost(&self.costs, *a)
                .partial_cmp(&site_cost(&self.costs, *b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        let site_order: Arc<[SiteId]> = Arc::from(site_order);
        self.plans.insert(
            suite,
            QuorumPlan {
                generation,
                site_order: Arc::clone(&site_order),
                rr: wv_sim::derive_seed(LB_SALT ^ u64::from(self.site.0), generation),
            },
        );
        Some(site_order)
    }

    /// The site order one decision should use: the cached plan as-is for
    /// cheapest-first, the plan with its cost-ties rotated for the
    /// load-balanced policy (each decision advances the rotation), `None`
    /// for the random ablation.
    fn decision_order(&mut self, suite: ObjectId) -> Option<Arc<[SiteId]>> {
        self.last_cursor = 0;
        self.last_reroute = false;
        let order = self.cached_site_order(suite)?;
        if self.options.quorum_policy != QuorumPolicy::LoadBalanced {
            return Some(order);
        }
        let rr = {
            let plan = self.plans.get_mut(&suite).expect("plan just built");
            let rr = plan.rr;
            plan.rr = plan.rr.wrapping_add(1);
            rr
        };
        self.last_cursor = rr;
        Some(rotate_cost_ties(&order, &self.costs, rr))
    }

    /// Folds one RTT sample into a site's EWMA (no-op with health off).
    fn note_rtt(&mut self, site: SiteId, rtt_ms: f64) {
        let Some(h) = self.options.health.as_ref() else {
            return;
        };
        if !rtt_ms.is_finite() || rtt_ms < 0.0 {
            return;
        }
        if let Some(sh) = self.health.get_mut(site.index()) {
            sh.rtt_ms = h.rtt_alpha * rtt_ms + (1.0 - h.rtt_alpha) * sh.rtt_ms;
        }
    }

    /// Any response from a site proves it alive: reset its suspicion.
    fn note_response(&mut self, site: SiteId) {
        if self.options.health.is_none() {
            return;
        }
        if let Some(sh) = self.health.get_mut(site.index()) {
            sh.suspicion = 0.0;
            sh.suspected = false;
        }
    }

    /// A site announced its own quarantine: slam its suspicion straight
    /// to the threshold so every cost-ranked order demotes it at once —
    /// the refusal is long-lived, unlike a timeout's soft evidence.
    fn mark_quarantined(&mut self, site: SiteId) {
        let Some(h) = self.options.health.clone() else {
            return;
        };
        if let Some(sh) = self.health.get_mut(site.index()) {
            sh.suspicion = sh.suspicion.max(h.suspicion_threshold);
            if !sh.suspected {
                sh.suspected = true;
                self.stats.suspicions_raised += 1;
            }
        }
    }

    /// A phase timed out with these sites still silent: bump their
    /// suspicion, marking them suspected at the threshold.
    fn note_unanswered(&mut self, sites: &[SiteId]) {
        let Some(h) = self.options.health.clone() else {
            return;
        };
        for &site in sites {
            if let Some(sh) = self.health.get_mut(site.index()) {
                sh.suspicion += h.suspicion_step;
                if !sh.suspected && sh.suspicion >= h.suspicion_threshold {
                    sh.suspected = true;
                    self.stats.suspicions_raised += 1;
                }
            }
        }
    }

    /// Applies health knowledge to a cost-ranked site order: suspected
    /// sites are demoted behind every unsuspected one, stably, so the
    /// cost ranking survives within each group. When every site is
    /// suspected the order is left alone — routing around everyone is
    /// routing nowhere. Counts a reroute whenever the demotion changed
    /// the order a decision actually used.
    fn reorder_by_health(&mut self, order: Arc<[SiteId]>) -> Arc<[SiteId]> {
        if self.options.health.is_none() {
            // Shared order passes through untouched — no per-op clone.
            return order;
        }
        let suspected =
            |s: SiteId| -> bool { self.health.get(s.index()).is_some_and(|h| h.suspected) };
        let mut reordered: Vec<SiteId> = order.iter().copied().filter(|&s| !suspected(s)).collect();
        if reordered.is_empty() || reordered.len() == order.len() {
            return order;
        }
        reordered.extend(order.iter().copied().filter(|&s| suspected(s)));
        if reordered[..] != order[..] {
            self.stats.reroutes += 1;
            self.last_reroute = true;
        }
        Arc::from(reordered)
    }

    /// Stable lowercase name of the active quorum policy, for the audit
    /// log and its human-readable explain.
    fn policy_name(&self) -> &'static str {
        match self.options.quorum_policy {
            QuorumPolicy::CheapestFirst => "cheapest_first",
            QuorumPolicy::Random => "random",
            QuorumPolicy::LoadBalanced => "load_balanced",
        }
    }

    /// Appends one decision to the audit log (no-op with auditing off).
    /// Reads only planner state that is already computed — never the RNG,
    /// never the effect queue — so auditing cannot perturb the protocol.
    /// `considered` is the candidate order the decision ranked; per-site
    /// inputs are captured for exactly those sites, in that order.
    #[allow(clippy::too_many_arguments)]
    fn audit_decision(
        &mut self,
        kind: DecisionKind,
        req: ReqId,
        suite: ObjectId,
        chosen: &[SiteId],
        considered: &[SiteId],
        cursor: u64,
        rerouted: bool,
        now: SimTime,
    ) {
        if self.audit.is_none() {
            return;
        }
        let health_on = self.options.health.is_some();
        let to_fixed = |v: f64, scale: f64| (v.clamp(0.0, 1e15) * scale).round() as u64;
        let inputs: Vec<SiteInput> = considered
            .iter()
            .map(|&s| {
                let h = self.health.get(s.index()).filter(|_| health_on);
                SiteInput {
                    site: s.0,
                    cost_us: to_fixed(site_cost(&self.costs, s), 1000.0),
                    rtt_us: h.map_or(0, |sh| to_fixed(sh.rtt_ms, 1000.0)),
                    suspicion_milli: h.map_or(0, |sh| to_fixed(sh.suspicion, 1000.0)),
                    suspected: h.is_some_and(|sh| sh.suspected),
                    load: self.site_load.get(s.index()).copied().unwrap_or(0),
                }
            })
            .collect();
        let policy = self.policy_name();
        let generation = self.configs.get(&suite).map_or(0, |c| c.generation);
        let log = self.audit.as_mut().expect("checked above");
        log.record(
            kind,
            req.0,
            suite.0,
            policy,
            generation,
            cursor,
            rerouted,
            chosen.iter().map(|s| s.0).collect(),
            inputs,
            now,
        );
    }

    /// The timeout for a phase contacting `sites`: with health tracking
    /// on, a multiple of the slowest contacted site's EWMA RTT clamped to
    /// `[min_timeout, phase_timeout]`; otherwise the fixed phase timeout.
    fn phase_delay(&self, sites: &[SiteId]) -> SimDuration {
        let Some(h) = self.options.health.as_ref() else {
            return self.options.phase_timeout;
        };
        let max_rtt = sites
            .iter()
            .filter_map(|s| self.health.get(s.index()))
            .map(|sh| sh.rtt_ms)
            .fold(0.0_f64, f64::max);
        if max_rtt <= 0.0 {
            return self.options.phase_timeout;
        }
        SimDuration::from_millis_f64(max_rtt * h.timeout_multiplier)
            .max(h.min_timeout)
            .min(self.options.phase_timeout)
    }

    /// When (relative to now) the hedge for a fetch aimed at `target`
    /// should fire, or `None` when hedging is off.
    fn hedge_delay(&self, target: SiteId) -> Option<SimDuration> {
        let h = self.options.health.as_ref()?;
        if !h.hedge {
            return None;
        }
        let rtt = self.health.get(target.index())?.rtt_ms;
        if rtt <= 0.0 {
            return None;
        }
        Some(
            SimDuration::from_millis_f64(rtt * h.hedge_multiplier).max(SimDuration::from_micros(1)),
        )
    }

    /// The client's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The client's current view of a suite's configuration.
    pub fn config(&self, suite: ObjectId) -> Option<&SuiteConfig> {
        self.configs.get(&suite)
    }

    /// Number of operations still in flight (launched or queued).
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Number of submissions still waiting for a pipeline slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Per-site counters of data requests (fetch legs, hedges, prepares)
    /// this client sent, indexed by site — the load the selection policy
    /// distributes across representatives.
    pub fn site_load(&self) -> &[u64] {
        &self.site_load
    }

    fn note_load(&mut self, site: SiteId) {
        if let Some(c) = self.site_load.get_mut(site.index()) {
            *c += 1;
        }
    }

    /// [`Self::note_load`] plus a telemetry request mark: every call site
    /// that counts load also counts a windowed request, attributed to the
    /// suite the request serves.
    fn note_load_at(&mut self, site: SiteId, suite: ObjectId, now: SimTime) {
        self.note_load(site);
        if let Some(t) = self.telemetry.as_mut() {
            t.note_suite_request(site.0, suite.0, now);
        }
    }

    /// Drains and returns the finished-operation log.
    pub fn take_completed(&mut self) -> Vec<CompletedOp> {
        std::mem::take(&mut self.completed)
    }

    fn fresh_req(&mut self) -> ReqId {
        let c = self.next_counter;
        self.next_counter += 1;
        ReqId::new(c, self.site)
    }

    /// Launches a freshly submitted operation, or queues it when the
    /// pipeline window is full. With no window configured this is exactly
    /// the classic immediate launch.
    fn submit(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        if let Some(depth) = self.options.pipeline_depth {
            if self.active >= depth {
                self.queue.push_back(req);
                return;
            }
        }
        self.active += 1;
        self.trace_op_start(req, ctx.now());
        self.begin_attempt(req, ctx);
    }

    /// Fills freed pipeline slots from the submission queue, in order.
    fn launch_queued(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        let Some(depth) = self.options.pipeline_depth else {
            return;
        };
        while self.active < depth {
            let Some(req) = self.queue.pop_front() else {
                return;
            };
            if !self.ops.contains_key(&req) {
                continue; // lost to a crash while queued
            }
            self.active += 1;
            self.trace_op_start(req, ctx.now());
            self.begin_attempt(req, ctx);
        }
    }

    /// Bookkeeping after an operation left the in-flight set: free its
    /// pipeline slot and launch waiting submissions into it.
    fn op_finished(&mut self, ctx: &mut NodeCtx<'_, Msg>) {
        self.active = self.active.saturating_sub(1);
        self.launch_queued(ctx);
    }

    /// Starts a quorum read. Returns the operation's first request id.
    pub fn start_read(&mut self, suite: ObjectId, ctx: &mut NodeCtx<'_, Msg>) -> ReqId {
        self.start_op(OpKind::Read, suite, None, None, ctx)
    }

    /// Starts a quorum write of `value`.
    pub fn start_write(
        &mut self,
        suite: ObjectId,
        value: impl Into<Bytes>,
        ctx: &mut NodeCtx<'_, Msg>,
    ) -> ReqId {
        self.start_op(OpKind::Write, suite, Some(value.into()), None, ctx)
    }

    /// Starts a multi-suite atomic transaction: every `(suite, value)`
    /// write commits, or none does. All suites must be known to this
    /// client. Returns the operation's first request id.
    pub fn start_transaction(
        &mut self,
        writes: Vec<(ObjectId, Bytes)>,
        ctx: &mut NodeCtx<'_, Msg>,
    ) -> ReqId {
        assert!(!writes.is_empty(), "a transaction needs at least one write");
        let mut seen = BTreeSet::new();
        for (suite, _) in &writes {
            assert!(
                seen.insert(*suite),
                "duplicate suite {suite} in transaction"
            );
        }
        let req = self.fresh_req();
        let started = ctx.now();
        let primary = writes[0].0;
        if writes.iter().any(|(s, _)| !self.configs.contains_key(s)) {
            self.completed.push(CompletedOp {
                req,
                kind: OpKind::Transaction,
                suite: primary,
                outcome: Err(OpError::UnknownSuite),
                started,
                finished: started,
                attempts: 0,
            });
            return req;
        }
        let st = OpState {
            kind: OpKind::Transaction,
            suite: primary,
            payload: None,
            change: None,
            new_config: None,
            multi_payloads: writes,
            reconfig_versions: BTreeMap::new(),
            reconfig_bump: None,
            started,
            attempt_started: started,
            attempts: 0,
            lock_ts: req.counter(),
            seq: 0,
            phase: Phase::RefreshConfig, // placeholder; begin_attempt resets
            trace: None,
        };
        self.ops.insert(req, st);
        self.submit(req, ctx);
        req
    }

    /// Starts a reconfiguration to `(assignment, quorum)`.
    pub fn start_reconfigure(
        &mut self,
        suite: ObjectId,
        assignment: VoteAssignment,
        quorum: QuorumSpec,
        ctx: &mut NodeCtx<'_, Msg>,
    ) -> ReqId {
        self.start_op(
            OpKind::Reconfigure,
            suite,
            None,
            Some((assignment, quorum)),
            ctx,
        )
    }

    fn start_op(
        &mut self,
        kind: OpKind,
        suite: ObjectId,
        payload: Option<Bytes>,
        change: Option<(VoteAssignment, QuorumSpec)>,
        ctx: &mut NodeCtx<'_, Msg>,
    ) -> ReqId {
        let req = self.fresh_req();
        let started = ctx.now();
        if !self.configs.contains_key(&suite) {
            self.completed.push(CompletedOp {
                req,
                kind,
                suite,
                outcome: Err(OpError::UnknownSuite),
                started,
                finished: started,
                attempts: 0,
            });
            return req;
        }
        let st = OpState {
            kind,
            suite,
            payload,
            change,
            new_config: None,
            multi_payloads: Vec::new(),
            reconfig_versions: BTreeMap::new(),
            reconfig_bump: None,
            started,
            attempt_started: started,
            attempts: 0,
            lock_ts: req.counter(),
            seq: 0,
            phase: Phase::RefreshConfig, // placeholder; begin_attempt resets
            trace: None,
        };
        self.ops.insert(req, st);
        self.submit(req, ctx);
        req
    }

    /// Cache-tier front end of [`Self::begin_attempt`]: serves the read
    /// from a live lease (zero network) or piggybacks it on an in-flight
    /// inquiry for the same suite. Returns `true` when the read was fully
    /// handled here, `false` when the classic attempt should proceed.
    fn try_cache_read(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) -> bool {
        let Some(st) = self.ops.get(&req) else {
            return true; // vanished (crash); nothing to begin
        };
        if st.kind != OpKind::Read {
            return false;
        }
        let suite = st.suite;
        // Live lease: serve locally. The deadline itself counts as
        // expired — a lease is good strictly before `lease_until`.
        if let Some(until) = self.cache.get(&suite).and_then(|e| e.lease_until) {
            if ctx.now() < until {
                let Some(st) = self.ops.get_mut(&req) else {
                    return true;
                };
                st.attempts += 1;
                st.seq += 1;
                st.attempt_started = ctx.now();
                self.serve_from_cache(req, suite, ctx);
                return true;
            }
            self.stats.lease_expiries += 1;
            if let Some(e) = self.cache.get_mut(&suite) {
                e.lease_until = None;
            }
        }
        // Coalesce: join a live in-flight inquiry for the same suite.
        // Only within the pipelined-op window — a piggybacked read
        // anchors its freshness at the *leader's* start, a relaxation
        // bounded by one inquiry round that depth-k batching opts into;
        // caller-paced reads keep the exact classic freshness anchor.
        if self.options.pipeline_depth.is_none() {
            return false;
        }
        let leader = self.inquiry_leaders.get(&suite).map(|(l, _)| *l);
        if let Some(leader) = leader {
            let live = leader != req
                && self.ops.get(&leader).is_some_and(|ls| {
                    ls.suite == suite && matches!(ls.phase, Phase::Inquire { .. })
                });
            if live {
                let sites = self.configs[&suite].assignment.all_sites();
                let delay = self.phase_delay(&sites);
                let Some(st) = self.ops.get_mut(&req) else {
                    return true;
                };
                st.attempts += 1;
                st.seq += 1;
                st.attempt_started = ctx.now();
                st.phase = Phase::Piggyback { leader };
                let seq = st.seq;
                self.stats.piggybacked_inquiries += 1;
                self.inquiry_leaders
                    .get_mut(&suite)
                    .expect("entry just read")
                    .1
                    .push(req);
                arm_timer(
                    &mut self.timers,
                    &mut self.next_timer,
                    req,
                    seq,
                    TimerKind::PhaseTimeout,
                    delay,
                    ctx,
                );
                return true;
            }
        }
        false
    }

    fn begin_attempt(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        if self
            .ops
            .get(&req)
            .is_some_and(|st| st.kind == OpKind::Transaction)
        {
            self.begin_multi_attempt(req, ctx);
            return;
        }
        // Cache tier: a live lease serves locally, and a read arriving
        // while another read's inquiry is in flight coalesces onto it.
        // Entirely skipped with `weak_rep` off.
        if self.options.weak_rep.is_some() && self.try_cache_read(req, ctx) {
            return;
        }
        let (suite, is_read) = {
            let Some(st) = self.ops.get(&req) else {
                return;
            };
            (st.suite, st.kind == OpKind::Read)
        };
        // With a warm cache entry the local copy plays the optimistic
        // fetch's part — pre-seeded into `early` below, so the inquiry
        // quorum can confirm it without any speculative ReadReq.
        let cached_early = if is_read && self.options.weak_rep.is_some() {
            self.cache
                .get(&suite)
                .map(|e| (self.site, e.version, e.value.clone()))
        } else {
            None
        };
        let wants_guess = is_read && self.options.optimistic_fetch && cached_early.is_none();
        // Optimistic fetch: race a content read to the cheapest host
        // against the inquiry; a current answer completes the read at
        // max(inquiry, fetch) instead of inquiry + fetch. The cheapest host
        // is the first entry of the cached plan.
        let guess = if wants_guess {
            match self.decision_order(suite) {
                Some(order) => {
                    let ranked = self.reorder_by_health(order);
                    let g = ranked.first().copied();
                    if self.audit.is_some() {
                        let chosen: Vec<SiteId> = g.into_iter().collect();
                        let (cursor, rerouted) = (self.last_cursor, self.last_reroute);
                        self.audit_decision(
                            DecisionKind::OptimisticFetch,
                            req,
                            suite,
                            &chosen,
                            &ranked,
                            cursor,
                            rerouted,
                            ctx.now(),
                        );
                    }
                    g
                }
                None => {
                    let eff_costs = self.effective_costs(ctx);
                    let g = self.configs[&suite]
                        .assignment
                        .all_sites()
                        .into_iter()
                        .min_by(|a, b| {
                            site_cost(&eff_costs, *a)
                                .partial_cmp(&site_cost(&eff_costs, *b))
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(b))
                        });
                    if self.audit.is_some() {
                        let chosen: Vec<SiteId> = g.into_iter().collect();
                        let all = self.configs[&suite].assignment.all_sites();
                        self.audit_decision(
                            DecisionKind::OptimisticFetch,
                            req,
                            suite,
                            &chosen,
                            &all,
                            0,
                            false,
                            ctx.now(),
                        );
                    }
                    g
                }
            }
        } else {
            None
        };
        let sites = self.configs[&suite].assignment.all_sites();
        let delay = self.phase_delay(&sites);
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        st.attempts += 1;
        st.seq += 1;
        st.attempt_started = ctx.now();
        st.phase = Phase::Inquire {
            versions: BTreeMap::new(),
            max_gen: 0,
            guess,
            early: cached_early,
        };
        let seq = st.seq;
        if is_read && self.options.weak_rep.is_some() {
            // This read now leads the suite's inquiry; later pipelined
            // reads coalesce behind it. (A stale entry for a dead leader
            // is simply overwritten — a live one would have captured this
            // read in `try_cache_read`.)
            self.inquiry_leaders.insert(suite, (req, Vec::new()));
        }
        if self.tracer.is_some() {
            self.trace_begin_phase(req, SpanKind::Inquiry, ctx.now());
            for site in &sites {
                self.trace_add_rpc(req, *site, ctx.now());
            }
            if let Some(target) = guess {
                self.trace_add_leg(req, target, SpanKind::Rpc, ctx.now());
            }
        }
        for site in sites {
            ctx.send(site, Msg::VersionReq { suite, req });
        }
        if let Some(target) = guess {
            self.note_load_at(target, suite, ctx.now());
            ctx.send(target, Msg::ReadReq { suite, req });
        }
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            req,
            seq,
            TimerKind::PhaseTimeout,
            delay,
            ctx,
        );
    }

    fn begin_multi_attempt(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        st.attempts += 1;
        st.seq += 1;
        let suites: Vec<ObjectId> = st.multi_payloads.iter().map(|(s, _)| *s).collect();
        st.phase = Phase::MultiInquire {
            per_suite: suites.iter().map(|s| (*s, BTreeMap::new())).collect(),
        };
        let seq = st.seq;
        if self.tracer.is_some() {
            self.trace_begin_phase(req, SpanKind::Inquiry, ctx.now());
            for suite in &suites {
                for site in self.configs[suite].assignment.all_sites() {
                    self.trace_add_rpc(req, site, ctx.now());
                }
            }
        }
        for suite in suites {
            for site in self.configs[&suite].assignment.all_sites() {
                ctx.send(site, Msg::VersionReq { suite, req });
            }
        }
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            req,
            seq,
            TimerKind::PhaseTimeout,
            self.options.phase_timeout,
            ctx,
        );
    }

    /// Records a version answer for a transaction and, once every suite
    /// has its quorum, fans the prepares out to the participant union.
    fn on_multi_version_resp(
        &mut self,
        from: SiteId,
        suite: ObjectId,
        req: ReqId,
        version: Version,
        generation: u64,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        self.trace_end_rpc(req, from, ctx.now(), SpanOutcome::Ok, version.0);
        let my_gen = self.configs.get(&suite).map_or(0, |c| c.generation);
        if generation > my_gen {
            self.enter_refresh(req, from, ctx);
            return;
        }
        let ready = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            let Phase::MultiInquire { per_suite } = &mut st.phase else {
                return;
            };
            let Some(answers) = per_suite.get_mut(&suite) else {
                return; // a suite this transaction does not touch
            };
            answers.insert(from, version);
            per_suite.iter().all(|(s, answers)| {
                let cfg = &self.configs[s];
                let responders: Vec<SiteId> = answers.keys().copied().collect();
                cfg.assignment.votes_in(&responders) >= cfg.quorum.read.max(cfg.quorum.write)
            })
        };
        if ready {
            self.enter_multi_prepare(req, ctx);
        }
    }

    fn enter_multi_prepare(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        use std::collections::BTreeMap as Map;
        // Pull the per-suite cached orders up front (they need `&mut self`,
        // which the planning block below borrows immutably).
        let touched: Vec<ObjectId> = {
            let Some(st) = self.ops.get(&req) else {
                return;
            };
            st.multi_payloads.iter().map(|(s, _)| *s).collect()
        };
        let mut orders: Map<ObjectId, Arc<[SiteId]>> = Map::new();
        let mut cursors: Map<ObjectId, u64> = Map::new();
        for suite in &touched {
            if let Some(order) = self.decision_order(*suite) {
                orders.insert(*suite, order);
                cursors.insert(*suite, self.last_cursor);
            }
        }
        // Random ablation: one fresh cost draw covers the whole transaction,
        // exactly as before the plan cache existed.
        let costs = if orders.len() == touched.len() {
            Vec::new()
        } else {
            self.effective_costs(ctx)
        };
        // Plan per-suite: new version and cheapest write quorum.
        let plan = {
            let Some(st) = self.ops.get(&req) else {
                return;
            };
            let Phase::MultiInquire { per_suite } = &st.phase else {
                return;
            };
            let mut plan: Vec<(ObjectId, Version, Vec<SiteId>, Bytes, u64)> = Vec::new();
            for (suite, payload) in &st.multi_payloads {
                let answers = &per_suite[suite];
                let cfg = &self.configs[suite];
                let current = answers.values().copied().max().unwrap_or(Version::INITIAL);
                let strong: Vec<SiteId> = answers
                    .keys()
                    .copied()
                    .filter(|s| cfg.assignment.votes_of(*s) > 0)
                    .collect();
                let quorum = match orders.get(suite) {
                    Some(order) => {
                        let in_order: Vec<SiteId> = order
                            .iter()
                            .copied()
                            .filter(|s| strong.contains(s))
                            .collect();
                        cheapest_quorum_presorted(&cfg.assignment, cfg.quorum.write, &in_order)
                    }
                    None => cheapest_quorum(&cfg.assignment, cfg.quorum.write, &strong, |s| {
                        site_cost(&costs, s)
                    }),
                };
                let Some(quorum) = quorum else {
                    return; // wait for more responders (threshold race)
                };
                plan.push((
                    *suite,
                    current.next(),
                    quorum,
                    payload.clone(),
                    cfg.generation,
                ));
            }
            plan
        };
        if self.audit.is_some() {
            for (suite, _version, quorum, _payload, _generation) in &plan {
                let considered: Vec<SiteId> = orders
                    .get(suite)
                    .map_or_else(|| quorum.clone(), |o| o.to_vec());
                let cursor = cursors.get(suite).copied().unwrap_or(0);
                self.audit_decision(
                    DecisionKind::TxnQuorum,
                    req,
                    *suite,
                    quorum,
                    &considered,
                    cursor,
                    false,
                    ctx.now(),
                );
            }
        }
        // Group the prepare entries per participant site.
        let mut per_site: Map<SiteId, Vec<PrepareWrite>> = Map::new();
        for (suite, version, quorum, value, generation) in &plan {
            for site in quorum {
                per_site.entry(*site).or_default().push(PrepareWrite {
                    suite: *suite,
                    object: data_object(*suite),
                    version: *version,
                    value: value.clone(),
                    generation: *generation,
                });
            }
        }
        let participants: Vec<SiteId> = per_site.keys().copied().collect();
        let versions: Vec<(ObjectId, Version)> = plan.iter().map(|(s, v, ..)| (*s, *v)).collect();
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        st.seq += 1;
        let seq = st.seq;
        let lock_ts = st.lock_ts;
        let home_suite = st.suite;
        st.phase = Phase::MultiPrepare {
            versions,
            participants: participants.clone(),
            yes: BTreeSet::new(),
        };
        if self.tracer.is_some() {
            self.trace_close_phase(req, ctx.now(), SpanOutcome::Ok);
            self.trace_begin_phase(req, SpanKind::Prepare, ctx.now());
            for site in &participants {
                self.trace_add_rpc(req, *site, ctx.now());
            }
        }
        for (site, writes) in per_site {
            self.note_load_at(site, home_suite, ctx.now());
            ctx.send(
                site,
                Msg::Prepare {
                    req,
                    writes,
                    lock_ts,
                },
            );
        }
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            req,
            seq,
            TimerKind::PhaseTimeout,
            self.options.phase_timeout,
            ctx,
        );
    }

    /// Ends the current attempt with `err`, retrying if budget remains.
    fn fail_attempt(&mut self, req: ReqId, err: OpError, ctx: &mut NodeCtx<'_, Msg>) {
        // A failing coalesced-inquiry leader must not strand its
        // followers; restart them on fresh attempts of their own.
        self.leader_abandoned(req, ctx);
        let Some(mut st) = self.ops.remove(&req) else {
            return;
        };
        let span_outcome = op_err_outcome(&err);
        if st.attempts >= self.options.max_attempts {
            self.trace_finish_op(&mut st, ctx.now(), span_outcome);
            self.stats.attempts_exhausted += 1;
            self.completed.push(CompletedOp {
                req,
                kind: st.kind,
                suite: st.suite,
                outcome: Err(err),
                started: st.started,
                finished: ctx.now(),
                attempts: st.attempts,
            });
            self.op_finished(ctx);
            return;
        }
        self.trace_close_attempt(&mut st, ctx.now(), span_outcome);
        // Fresh request id for the next attempt; late traffic for the old
        // id will find no operation and be ignored.
        self.stats.retries += 1;
        let new_req = self.fresh_req();
        st.seq += 1;
        let seq = st.seq;
        let attempts = st.attempts;
        self.ops.insert(new_req, st);
        let delay = self.retry_delay(new_req, attempts);
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            new_req,
            seq,
            TimerKind::Retry,
            delay,
            ctx,
        );
    }

    /// Capped exponential backoff with deterministic jitter. `backoff` is
    /// the first retry's base step, doubling per completed attempt up to
    /// `backoff_cap`; jitter adds up to half the base on top. The jitter
    /// bits are a pure function of (site, request counter, attempt) via
    /// [`wv_sim::derive_seed`] — no RNG draw — so retry timing is
    /// bit-identical at any trial worker count.
    fn retry_delay(&self, req: ReqId, attempts: u32) -> SimDuration {
        const BACKOFF_SALT: u64 = 0x4A17_7E12_B0FF_0FF5;
        let doublings = attempts.saturating_sub(1).min(16);
        let base_ms = (self.options.backoff.as_millis_f64() * (1u64 << doublings) as f64)
            .min(self.options.backoff_cap.as_millis_f64());
        let bits = wv_sim::derive_seed(
            wv_sim::derive_seed(BACKOFF_SALT ^ u64::from(self.site.0), req.counter()),
            u64::from(attempts),
        );
        let frac = (bits >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        SimDuration::from_millis_f64(base_ms * (1.0 + 0.5 * frac))
    }

    /// Restart after adopting a fresh configuration (no backoff — the
    /// config is new information, not a suspected conflict).
    fn restart_op(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        let Some(mut st) = self.ops.remove(&req) else {
            return;
        };
        if st.attempts >= self.options.max_attempts {
            self.trace_finish_op(&mut st, ctx.now(), SpanOutcome::Conflict);
            self.stats.attempts_exhausted += 1;
            self.completed.push(CompletedOp {
                req,
                kind: st.kind,
                suite: st.suite,
                outcome: Err(OpError::Conflict),
                started: st.started,
                finished: ctx.now(),
                attempts: st.attempts,
            });
            self.op_finished(ctx);
            return;
        }
        self.trace_close_attempt(&mut st, ctx.now(), SpanOutcome::Stale);
        let new_req = self.fresh_req();
        self.ops.insert(new_req, st);
        self.begin_attempt(new_req, ctx);
    }

    fn complete(
        &mut self,
        req: ReqId,
        outcome: Result<OpSuccess, OpError>,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        if let Some(mut st) = self.ops.remove(&req) {
            let span_outcome = match &outcome {
                Ok(_) => SpanOutcome::Ok,
                Err(e) => op_err_outcome(e),
            };
            self.trace_finish_op(&mut st, ctx.now(), span_outcome);
            self.completed.push(CompletedOp {
                req,
                kind: st.kind,
                suite: st.suite,
                outcome,
                started: st.started,
                finished: ctx.now(),
                attempts: st.attempts,
            });
            self.op_finished(ctx);
        }
    }

    fn enter_refresh(&mut self, req: ReqId, ask: SiteId, ctx: &mut NodeCtx<'_, Msg>) {
        // A coalesced-inquiry leader that leaves for a config refresh
        // hands its followers back to fresh attempts first.
        self.leader_abandoned(req, ctx);
        self.trace_close_phase(req, ctx.now(), SpanOutcome::Stale);
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        // If a prepare was in flight, clean it up before refreshing.
        match &st.phase {
            Phase::Prepare { quorum, .. } => {
                let suite = st.suite;
                for site in quorum.clone() {
                    ctx.send(site, Msg::Abort { suite, req });
                }
            }
            Phase::MultiPrepare { participants, .. } => {
                let suite = st.suite;
                for site in participants.clone() {
                    ctx.send(site, Msg::Abort { suite, req });
                }
            }
            _ => {}
        }
        st.seq += 1;
        st.phase = Phase::RefreshConfig;
        let suite = st.suite;
        let seq = st.seq;
        ctx.send(ask, Msg::ConfigReq { suite, req });
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            req,
            seq,
            TimerKind::PhaseTimeout,
            self.options.phase_timeout,
            ctx,
        );
    }

    /// Votes needed before leaving the inquiry phase.
    fn inquiry_threshold(kind: OpKind, cfg: &SuiteConfig) -> u32 {
        match kind {
            OpKind::Read => cfg.quorum.read,
            // Writers need the inquiry quorum *and* enough responders to
            // form a write quorum.
            OpKind::Write | OpKind::Reconfigure | OpKind::Transaction => {
                cfg.quorum.read.max(cfg.quorum.write)
            }
        }
    }

    fn on_version_resp(
        &mut self,
        from: SiteId,
        suite: ObjectId,
        req: ReqId,
        version: Version,
        generation: u64,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        enum Next {
            Wait,
            Refresh,
            EarlyHit {
                source: SiteId,
                version: Version,
                value: Bytes,
                /// True when the early answer was the attached weak
                /// representative's entry rather than an optimistic RPC.
                from_cache: bool,
                current: Version,
                /// Current holders, for settling piggybacked reads that
                /// need a fetch (computed only with the cache tier on).
                candidates: Vec<SiteId>,
            },
            ToFetch {
                current: Version,
                candidates: Vec<SiteId>,
            },
            ToPrepare {
                current: Version,
                responders: Vec<SiteId>,
            },
        }
        let my_gen = self.configs.get(&suite).map_or(0, |c| c.generation);
        // A version answer arriving during the inquiry phase measures one
        // round trip; feed it to the health tracker.
        if let Some(st) = self.ops.get(&req) {
            if matches!(st.phase, Phase::Inquire { .. }) {
                let rtt = ctx.now().since(st.attempt_started);
                self.note_rtt(from, rtt.as_millis_f64());
                if let Some(t) = self.telemetry.as_mut() {
                    t.note_rtt(from.0, rtt, ctx.now());
                }
            }
        }
        self.trace_end_rpc(req, from, ctx.now(), SpanOutcome::Ok, version.0);
        // Fetch-candidate ranking is only needed on paths that fetch
        // (reads and reconfigurations); writes rank sites in `enter_prepare`.
        let wants_holders = self
            .ops
            .get(&req)
            .is_some_and(|st| matches!(st.kind, OpKind::Read | OpKind::Reconfigure));
        let plan = if wants_holders {
            self.decision_order(suite)
                .map(|o| self.reorder_by_health(o))
        } else {
            None
        };
        let eff_costs = if wants_holders && plan.is_none() {
            self.effective_costs(ctx)
        } else {
            Vec::new()
        };
        let holders = |versions: &BTreeMap<SiteId, Version>, current: Version| match &plan {
            Some(order) => holders_in_plan_order(versions, current, order),
            None => current_holders(versions, current, &eff_costs),
        };
        let next = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            let Phase::Inquire {
                versions,
                max_gen,
                guess,
                early,
            } = &mut st.phase
            else {
                return;
            };
            if generation > my_gen {
                Next::Refresh
            } else {
                versions.insert(from, version);
                *max_gen = (*max_gen).max(generation);
                let cfg = &self.configs[&suite];
                let responders: Vec<SiteId> = versions.keys().copied().collect();
                let votes = cfg.assignment.votes_in(&responders);
                if votes < Self::inquiry_threshold(st.kind, cfg) {
                    Next::Wait
                } else {
                    // Quorum reached: the highest version among the answers
                    // is current (read/write intersection guarantees it).
                    let current = versions.values().copied().max().unwrap_or(Version::INITIAL);
                    match st.kind {
                        OpKind::Read => {
                            // The optimistic fetch wins if it proved
                            // current (or newer — a racing commit). With
                            // the cache tier on, `early` may instead hold
                            // the attached weak representative's entry
                            // (`guess` is `None` then), which the quorum
                            // has just confirmed the same way.
                            if let Some((source, v, val)) = early.clone() {
                                if v >= current {
                                    Next::EarlyHit {
                                        source,
                                        version: v,
                                        value: val,
                                        from_cache: guess.is_none(),
                                        current,
                                        candidates: if self.options.weak_rep.is_some() {
                                            holders(versions, current)
                                        } else {
                                            Vec::new()
                                        },
                                    }
                                } else {
                                    Next::ToFetch {
                                        current,
                                        candidates: holders(versions, current),
                                    }
                                }
                            } else {
                                Next::ToFetch {
                                    current,
                                    candidates: holders(versions, current),
                                }
                            }
                        }
                        OpKind::Write => Next::ToPrepare {
                            current,
                            responders,
                        },
                        OpKind::Reconfigure => {
                            // The reconfiguration transaction also brings
                            // stale members of the *new* write quorum
                            // current (the paper's rule for adding votes),
                            // so the responders must additionally be able
                            // to form that quorum, and the current
                            // contents must be fetched first.
                            let new_feasible = st
                                .change
                                .as_ref()
                                .map(|(assignment, quorum)| {
                                    assignment.votes_in(&responders) >= quorum.write
                                })
                                .unwrap_or(false);
                            if !new_feasible {
                                Next::Wait
                            } else {
                                st.reconfig_versions = versions.clone();
                                Next::ToFetch {
                                    current,
                                    candidates: holders(versions, current),
                                }
                            }
                        }
                        OpKind::Transaction => {
                            unreachable!("transactions use MultiInquire")
                        }
                    }
                }
            }
        };
        match next {
            Next::Wait => {}
            Next::Refresh => self.enter_refresh(req, from, ctx),
            Next::EarlyHit {
                source,
                version,
                value,
                from_cache,
                current,
                candidates,
            } => {
                if from_cache {
                    self.stats.cache_hits += 1;
                    self.trace_cache_event(req, SpanKind::CacheHit, version.0, ctx.now());
                    self.grant_lease(suite, ctx.now());
                } else {
                    self.stats.reads_cache_hit += 1;
                    if self.options.weak_rep.is_some() {
                        self.stats.cache_misses += 1;
                    }
                }
                self.settle_followers(suite, req, current, &candidates, ctx);
                self.finish_read(req, suite, source, version, value, ctx);
            }
            Next::ToFetch {
                current,
                candidates,
            } => {
                self.trace_close_phase(req, ctx.now(), SpanOutcome::Ok);
                if self.audit.is_some() {
                    let considered: Vec<SiteId> = plan
                        .as_deref()
                        .map_or_else(|| candidates.clone(), <[SiteId]>::to_vec);
                    let (cursor, rerouted) = (self.last_cursor, self.last_reroute);
                    self.audit_decision(
                        DecisionKind::FetchPlan,
                        req,
                        suite,
                        &candidates,
                        &considered,
                        cursor,
                        rerouted,
                        ctx.now(),
                    );
                }
                self.settle_followers(suite, req, current, &candidates, ctx);
                self.enter_fetch(req, suite, current, candidates, ctx)
            }
            Next::ToPrepare {
                current,
                responders,
            } => {
                self.trace_close_phase(req, ctx.now(), SpanOutcome::Ok);
                self.enter_prepare(req, suite, current, responders, ctx)
            }
        }
    }

    /// Completes a read with `value`, refreshing the local weak
    /// representative if it missed. For reconfigurations the fetched
    /// contents feed the prepare instead of completing the operation.
    fn finish_read(
        &mut self,
        req: ReqId,
        suite: ObjectId,
        source: SiteId,
        version: Version,
        value: Bytes,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        if self
            .ops
            .get(&req)
            .is_some_and(|st| st.kind == OpKind::Reconfigure)
        {
            self.enter_reconfig_prepare(req, suite, version, value, ctx);
            return;
        }
        let cfg = &self.configs[&suite];
        if self.options.update_local_weak
            && cfg.assignment.is_weak(self.site)
            && source != self.site
        {
            ctx.send(
                self.site,
                Msg::UpdateWeak {
                    suite,
                    version,
                    value: value.clone(),
                },
            );
        }
        // Cache tier: every quorum-backed read refreshes the attached
        // weak representative (and re-arms the lease in lease mode).
        if self.options.weak_rep.is_some() {
            if source != self.site {
                self.trace_cache_event(req, SpanKind::CacheRefresh, version.0, ctx.now());
            }
            self.fill_cache(suite, version, &value, ctx.now());
        }
        self.complete(
            req,
            Ok(OpSuccess {
                version,
                value: Some(value),
                multi: Vec::new(),
            }),
            ctx,
        );
    }

    fn enter_fetch(
        &mut self,
        req: ReqId,
        suite: ObjectId,
        current: Version,
        candidates: Vec<SiteId>,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        let first = candidates[0];
        let delay = self.phase_delay(&[first]);
        let hedge = if candidates.len() > 1 {
            self.hedge_delay(first)
        } else {
            None
        };
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        st.seq += 1;
        let seq = st.seq;
        st.phase = Phase::Fetch {
            current,
            candidates,
            idx: 0,
            hedged: None,
        };
        if self.tracer.is_some() {
            self.trace_begin_phase(req, SpanKind::Fetch, ctx.now());
            self.trace_add_leg(req, first, SpanKind::Rpc, ctx.now());
        }
        self.note_load_at(first, suite, ctx.now());
        ctx.send(first, Msg::ReadReq { suite, req });
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            req,
            seq,
            TimerKind::PhaseTimeout,
            delay,
            ctx,
        );
        // The hedge shares the phase's seq: firing neither advances the
        // phase nor counts as a timeout.
        if let Some(hd) = hedge {
            if hd < delay {
                arm_timer(
                    &mut self.timers,
                    &mut self.next_timer,
                    req,
                    seq,
                    TimerKind::Hedge,
                    hd,
                    ctx,
                );
            }
        }
    }

    /// A hedge delay expired with the fetch still outstanding: contact the
    /// next-cheapest candidate *without* abandoning the current one.
    /// Whichever answers current first completes the read.
    fn on_hedge(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        let launched = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            let suite = st.suite;
            let Phase::Fetch {
                candidates,
                idx,
                hedged,
                ..
            } = &mut st.phase
            else {
                return;
            };
            if hedged.is_some() {
                return;
            }
            let Some(&next) = candidates.get(*idx + 1) else {
                return;
            };
            *hedged = Some(next);
            (next, suite)
        };
        self.stats.hedges_fired += 1;
        self.trace_add_leg(req, launched.0, SpanKind::Hedge, ctx.now());
        if self.audit.is_some() {
            self.audit_decision(
                DecisionKind::Hedge,
                req,
                launched.1,
                &[launched.0],
                &[launched.0],
                0,
                false,
                ctx.now(),
            );
        }
        self.note_load_at(launched.0, launched.1, ctx.now());
        ctx.send(
            launched.0,
            Msg::ReadReq {
                suite: launched.1,
                req,
            },
        );
    }

    fn enter_prepare(
        &mut self,
        req: ReqId,
        suite: ObjectId,
        current: Version,
        responders: Vec<SiteId>,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        // Build the prepare parameters from the op kind and the current
        // configuration, then switch phase and fan out.
        let cfg = self.configs[&suite].clone();
        let (object, version, value) = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            debug_assert_eq!(st.kind, OpKind::Write, "only writes prepare here");
            (
                data_object(suite),
                current.next(),
                st.payload.clone().expect("write carries a payload"),
            )
        };
        let new_config: Option<SuiteConfig> = None;
        let strong_responders: Vec<SiteId> = responders
            .iter()
            .copied()
            .filter(|s| cfg.assignment.votes_of(*s) > 0)
            .collect();
        let ranked = self
            .decision_order(suite)
            .map(|o| self.reorder_by_health(o));
        let quorum = match &ranked {
            Some(order) => {
                // The cached plan already ranks every site; restricting it
                // to the strong responders preserves the cost order (health
                // reordering only moves suspected sites to the back), so
                // the greedy prefix matches a fresh `cheapest_quorum` among
                // the unsuspected sites exactly.
                let in_order: Vec<SiteId> = order
                    .iter()
                    .copied()
                    .filter(|s| strong_responders.contains(s))
                    .collect();
                cheapest_quorum_presorted(&cfg.assignment, cfg.quorum.write, &in_order)
            }
            None => {
                let costs = self.effective_costs(ctx);
                cheapest_quorum(&cfg.assignment, cfg.quorum.write, &strong_responders, |s| {
                    site_cost(&costs, s)
                })
            }
        };
        let Some(quorum) = quorum else {
            // Cannot happen once the vote threshold passed; be defensive.
            return;
        };
        if self.audit.is_some() {
            let considered: Vec<SiteId> = ranked
                .as_deref()
                .map_or_else(|| strong_responders.clone(), <[SiteId]>::to_vec);
            let (cursor, rerouted) = (self.last_cursor, self.last_reroute);
            self.audit_decision(
                DecisionKind::WriteQuorum,
                req,
                suite,
                &quorum,
                &considered,
                cursor,
                rerouted,
                ctx.now(),
            );
        }
        let delay = self.phase_delay(&quorum);
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        st.new_config = new_config;
        st.seq += 1;
        let seq = st.seq;
        let lock_ts = st.lock_ts;
        st.phase = Phase::Prepare {
            new_version: version,
            quorum: quorum.clone(),
            yes: BTreeSet::new(),
        };
        if self.tracer.is_some() {
            self.trace_begin_phase(req, SpanKind::Prepare, ctx.now());
            for site in &quorum {
                self.trace_add_rpc(req, *site, ctx.now());
            }
        }
        for site in &quorum {
            self.note_load_at(*site, suite, ctx.now());
            ctx.send(
                *site,
                Msg::Prepare {
                    req,
                    writes: vec![PrepareWrite {
                        suite,
                        object,
                        version,
                        value: value.clone(),
                        generation: cfg.generation,
                    }],
                    lock_ts,
                },
            );
        }
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            req,
            seq,
            TimerKind::PhaseTimeout,
            delay,
            ctx,
        );
    }

    /// Fans out a reconfiguration prepare: the new configuration goes to a
    /// write quorum of the *old* configuration, and the current contents
    /// are re-published one version up to that quorum plus the *new*
    /// configuration's cheapest write quorum — one atomic batch per
    /// participant, so after commit every new-config read quorum is
    /// guaranteed a current representative, and the version bump makes
    /// the whole transaction conflict with (and so serialise against)
    /// any concurrent data write.
    fn enter_reconfig_prepare(
        &mut self,
        req: ReqId,
        suite: ObjectId,
        current_version: Version,
        current_value: Bytes,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        use std::collections::BTreeMap as Map;
        self.trace_close_phase(req, ctx.now(), SpanOutcome::Ok);
        let old_cfg = self.configs[&suite].clone();
        // Reconfiguration bypasses the plan cache: it ranks sites under two
        // assignments at once (the old one for the config quorum and the
        // not-yet-adopted new one for the data copies), and committing it
        // invalidates the plan anyway. Reconfigs are rare; the fresh sort
        // is not on any hot path.
        let costs = self.effective_costs(ctx);
        // Build the new configuration.
        let (new_cfg, inquiry_versions) = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            let (assignment, quorum) = st.change.clone().expect("reconfigure carries a change");
            match old_cfg.evolve(assignment, quorum) {
                Ok(next) => (next, st.reconfig_versions.clone()),
                Err(e) => {
                    self.complete(req, Err(OpError::IllegalConfig(e)), ctx);
                    return;
                }
            }
        };
        let responders: Vec<SiteId> = inquiry_versions.keys().copied().collect();
        // Old-config write quorum for the config object.
        let old_strong: Vec<SiteId> = responders
            .iter()
            .copied()
            .filter(|s| old_cfg.assignment.votes_of(*s) > 0)
            .collect();
        let Some(config_quorum) = cheapest_quorum(
            &old_cfg.assignment,
            old_cfg.quorum.write,
            &old_strong,
            |s| site_cost(&costs, s),
        ) else {
            return; // defensive: threshold already passed
        };
        // New-config write quorum for the data copies.
        let new_strong: Vec<SiteId> = new_cfg
            .assignment
            .strong_sites()
            .into_iter()
            .filter(|s| responders.contains(s))
            .collect();
        let Some(data_quorum) = cheapest_quorum(
            &new_cfg.assignment,
            new_cfg.quorum.write,
            &new_strong,
            |s| site_cost(&costs, s),
        ) else {
            // The responders cannot form a write quorum under the new
            // configuration; installing it would strand the data. Fail the
            // attempt and retry when more sites answer.
            self.fail_attempt(
                req,
                OpError::Unavailable {
                    kind: OpKind::Reconfigure,
                },
                ctx,
            );
            return;
        };
        // Assemble per-site batches.
        let mut per_site: Map<SiteId, Vec<PrepareWrite>> = Map::new();
        let config_bytes = Bytes::from(new_cfg.encode());
        for site in &config_quorum {
            per_site.entry(*site).or_default().push(PrepareWrite {
                suite,
                object: config_object(suite),
                version: Version(new_cfg.generation),
                value: config_bytes.clone(),
                generation: old_cfg.generation,
            });
        }
        // Re-publish the contents one version up, through the old write
        // quorum *and* the new one. The bump is what serialises the
        // reconfiguration against concurrent data writes: any such write
        // shares a representative with the config quorum (old write
        // quorums intersect), and whichever transaction loses the lock or
        // the version race there retries against the winner's state. The
        // old inquiry's per-site versions no longer matter — every
        // participant gets the copy, and the server-side staleness check
        // admits it everywhere because the version is fresh.
        let bump = Version(current_version.0 + 1);
        for site in config_quorum.iter().chain(data_quorum.iter()) {
            let entry = per_site.entry(*site).or_default();
            if entry.iter().any(|pw| pw.object == data_object(suite)) {
                continue;
            }
            entry.push(PrepareWrite {
                suite,
                object: data_object(suite),
                version: bump,
                value: current_value.clone(),
                generation: old_cfg.generation,
            });
        }
        let participants: Vec<SiteId> = per_site.keys().copied().collect();
        let Some(st) = self.ops.get_mut(&req) else {
            return;
        };
        st.new_config = Some(new_cfg.clone());
        st.reconfig_bump = Some(bump);
        st.seq += 1;
        let seq = st.seq;
        let lock_ts = st.lock_ts;
        st.phase = Phase::Prepare {
            new_version: Version(new_cfg.generation),
            quorum: participants.clone(),
            yes: BTreeSet::new(),
        };
        if self.tracer.is_some() {
            self.trace_begin_phase(req, SpanKind::Prepare, ctx.now());
            for site in &participants {
                self.trace_add_rpc(req, *site, ctx.now());
            }
        }
        for (site, writes) in per_site {
            self.note_load_at(site, suite, ctx.now());
            ctx.send(
                site,
                Msg::Prepare {
                    req,
                    writes,
                    lock_ts,
                },
            );
        }
        arm_timer(
            &mut self.timers,
            &mut self.next_timer,
            req,
            seq,
            TimerKind::PhaseTimeout,
            self.options.phase_timeout,
            ctx,
        );
    }

    fn on_read_resp(
        &mut self,
        from: SiteId,
        suite: ObjectId,
        req: ReqId,
        version: Version,
        value: Bytes,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        enum Disposition {
            StoredEarly,
            Fresh { via_hedge: bool },
            StaleFromCandidate,
            StaleStray,
        }
        let disposition = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            match &mut st.phase {
                // The optimistic fetch answered before the inquiry quorum:
                // hold the value until the quorum tells us what's current.
                Phase::Inquire { guess, early, .. } if *guess == Some(from) => {
                    let keep = early.as_ref().is_none_or(|(_, v, _)| version > *v);
                    if keep {
                        *early = Some((from, version, value.clone()));
                    }
                    Disposition::StoredEarly
                }
                Phase::Fetch {
                    current,
                    candidates,
                    idx,
                    hedged,
                } => {
                    if version >= *current {
                        Disposition::Fresh {
                            via_hedge: *hedged == Some(from) && candidates.get(*idx) != Some(&from),
                        }
                    } else if candidates.get(*idx) == Some(&from) {
                        Disposition::StaleFromCandidate
                    } else {
                        // A stale answer from some other site (typically
                        // the optimistic-fetch target landing late) says
                        // nothing about the candidate we actually asked.
                        Disposition::StaleStray
                    }
                }
                _ => return,
            }
        };
        match disposition {
            Disposition::StoredEarly => {
                self.trace_end_leg(req, from, ctx.now(), SpanOutcome::Ok, version.0);
            }
            Disposition::StaleStray => {
                self.trace_end_leg(req, from, ctx.now(), SpanOutcome::Stale, version.0);
            }
            // The candidate answered below what the quorum proved current
            // — a stale duplicate; move to the next candidate.
            Disposition::StaleFromCandidate => {
                self.trace_end_leg(req, from, ctx.now(), SpanOutcome::Stale, version.0);
                self.try_next_candidate(req, Some(from), ctx)
            }
            Disposition::Fresh { via_hedge } => {
                if via_hedge {
                    self.stats.hedge_wins += 1;
                }
                self.stats.reads_fetched += 1;
                if self.options.weak_rep.is_some()
                    && self.ops.get(&req).is_some_and(|st| st.kind == OpKind::Read)
                {
                    self.stats.cache_misses += 1;
                }
                self.trace_end_leg(req, from, ctx.now(), SpanOutcome::Ok, version.0);
                self.finish_read(req, suite, from, version, value, ctx);
            }
        }
    }

    /// Advances a fetch to its next candidate. `from` is the site whose
    /// answer (or refusal) triggered the advance, when one did: a reply
    /// from a site that is not the current leg's target — typically a
    /// late refusal of the *inquiry* sent under the same request id —
    /// says nothing about the candidate actually being fetched from and
    /// must not burn it. `None` means a phase timeout, which always
    /// refers to the current leg.
    fn try_next_candidate(&mut self, req: ReqId, from: Option<SiteId>, ctx: &mut NodeCtx<'_, Msg>) {
        enum Next {
            Exhausted,
            Try {
                site: SiteId,
                suite: ObjectId,
                seq: u64,
                more: bool,
            },
        }
        let next = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            let suite = st.suite;
            let Phase::Fetch {
                candidates,
                idx,
                hedged,
                ..
            } = &mut st.phase
            else {
                return;
            };
            if let Some(f) = from {
                if candidates.get(*idx) != Some(&f) && *hedged != Some(f) {
                    return;
                }
            }
            *idx += 1;
            if *idx >= candidates.len() {
                Next::Exhausted
            } else {
                st.seq += 1;
                // The new leg starts unhedged; a duplicate ReadReq to the
                // previous hedge target is harmless (reads are idempotent).
                *hedged = None;
                Next::Try {
                    site: candidates[*idx],
                    suite,
                    seq: st.seq,
                    more: *idx + 1 < candidates.len(),
                }
            }
        };
        match next {
            Next::Exhausted => self.fail_attempt(req, OpError::Conflict, ctx),
            Next::Try {
                site,
                suite,
                seq,
                more,
            } => {
                let delay = self.phase_delay(&[site]);
                let hedge = if more { self.hedge_delay(site) } else { None };
                self.trace_add_leg(req, site, SpanKind::Rpc, ctx.now());
                if self.audit.is_some() {
                    self.audit_decision(
                        DecisionKind::FetchFailover,
                        req,
                        suite,
                        &[site],
                        &[site],
                        0,
                        false,
                        ctx.now(),
                    );
                }
                self.note_load_at(site, suite, ctx.now());
                ctx.send(site, Msg::ReadReq { suite, req });
                arm_timer(
                    &mut self.timers,
                    &mut self.next_timer,
                    req,
                    seq,
                    TimerKind::PhaseTimeout,
                    delay,
                    ctx,
                );
                if let Some(hd) = hedge {
                    if hd < delay {
                        arm_timer(
                            &mut self.timers,
                            &mut self.next_timer,
                            req,
                            seq,
                            TimerKind::Hedge,
                            hd,
                            ctx,
                        );
                    }
                }
            }
        }
    }

    fn on_prepare_vote(
        &mut self,
        from: SiteId,
        suite: ObjectId,
        req: ReqId,
        vote: Vote,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        enum Next {
            Ignore,
            AbortAll(Vec<SiteId>),
            Decided(Vec<SiteId>),
        }
        let vote_detail = match vote {
            Vote::Yes => 1,
            Vote::No => 0,
        };
        self.trace_end_rpc(req, from, ctx.now(), SpanOutcome::Ok, vote_detail);
        let next = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            let (quorum, yes) = match &mut st.phase {
                Phase::Prepare { quorum, yes, .. } => (quorum, yes),
                Phase::MultiPrepare {
                    participants, yes, ..
                } => (participants, yes),
                _ => return,
            };
            if !quorum.contains(&from) {
                Next::Ignore
            } else {
                match vote {
                    Vote::No => Next::AbortAll(quorum.clone()),
                    Vote::Yes => {
                        yes.insert(from);
                        if yes.len() == quorum.len() {
                            Next::Decided(quorum.clone())
                        } else {
                            Next::Ignore
                        }
                    }
                }
            }
        };
        match next {
            Next::Ignore => {}
            Next::AbortAll(quorum) => {
                for site in quorum {
                    ctx.send(site, Msg::Abort { suite, req });
                }
                self.fail_attempt(req, OpError::Conflict, ctx);
            }
            Next::Decided(quorum) => {
                // Decide commit — durably, *before* any commit message
                // leaves, so decision probes always get the truth.
                let tx = self.decisions.begin().expect("decision log is up");
                self.decisions
                    .stage_put(tx, ObjectId(req.0), Version(1), Bytes::new())
                    .expect("stage decision");
                self.decisions.commit(tx).expect("commit decision");
                self.decided_commit.insert(req);
                let delay = self.phase_delay(&quorum);
                let seq = {
                    let st = self.ops.get_mut(&req).expect("op is live");
                    st.seq += 1;
                    match &st.phase {
                        Phase::Prepare { new_version, .. } => {
                            let new_version = *new_version;
                            st.phase = Phase::CommitWait {
                                new_version,
                                quorum: quorum.clone(),
                                acked: BTreeSet::new(),
                                resends: 0,
                            };
                        }
                        Phase::MultiPrepare { versions, .. } => {
                            let versions = versions.clone();
                            st.phase = Phase::MultiCommit {
                                versions,
                                participants: quorum.clone(),
                                acked: BTreeSet::new(),
                                resends: 0,
                            };
                        }
                        _ => unreachable!("checked above"),
                    }
                    st.seq
                };
                if self.tracer.is_some() {
                    self.trace_decision_logged(req, ctx.now());
                    self.trace_close_phase(req, ctx.now(), SpanOutcome::Ok);
                    self.trace_begin_phase(req, SpanKind::Commit, ctx.now());
                    for site in &quorum {
                        self.trace_add_rpc(req, *site, ctx.now());
                    }
                }
                for site in &quorum {
                    ctx.send(*site, Msg::Commit { suite, req });
                }
                arm_timer(
                    &mut self.timers,
                    &mut self.next_timer,
                    req,
                    seq,
                    TimerKind::PhaseTimeout,
                    delay,
                    ctx,
                );
            }
        }
    }

    fn on_ack(
        &mut self,
        from: SiteId,
        suite: ObjectId,
        req: ReqId,
        committed: bool,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        if !committed {
            return; // abort acks need no bookkeeping
        }
        self.trace_end_rpc(req, from, ctx.now(), SpanOutcome::Ok, 1);
        let finished = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            match &mut st.phase {
                Phase::CommitWait {
                    new_version,
                    quorum,
                    acked,
                    ..
                } => {
                    if !quorum.contains(&from) {
                        return;
                    }
                    acked.insert(from);
                    if acked.len() == quorum.len() {
                        let version = *new_version;
                        let adopt = st.new_config.take();
                        let push = self.options.push_weak_on_write && st.kind == OpKind::Write;
                        let payload = st.payload.clone();
                        // A reconfiguration reports the data version its
                        // bump consumed via `multi`, so history checkers
                        // can account for it.
                        let multi = match (st.kind, st.reconfig_bump) {
                            (OpKind::Reconfigure, Some(bump)) => vec![(st.suite, bump)],
                            _ => Vec::new(),
                        };
                        Some((version, adopt, push, payload, multi))
                    } else {
                        None
                    }
                }
                Phase::MultiCommit {
                    versions,
                    participants,
                    acked,
                    ..
                } => {
                    if !participants.contains(&from) {
                        return;
                    }
                    acked.insert(from);
                    if acked.len() == participants.len() {
                        let versions = versions.clone();
                        let version = versions[0].1;
                        Some((version, None, false, None, versions))
                    } else {
                        None
                    }
                }
                _ => return,
            }
        };
        let Some((version, adopt, push, payload, multi)) = finished else {
            return;
        };
        // Adopt the configuration this operation just installed, and drop
        // the quorum plan built against the superseded one.
        if let Some(next) = adopt {
            self.configs.insert(suite, next);
            self.plans.remove(&suite);
        }
        // A local commit supersedes the attached weak representative's
        // entry for every suite it touched: drop the entries (and their
        // leases) so no later cache serve can return overwritten data.
        if self.options.weak_rep.is_some() {
            self.cache.remove(&suite);
            for (s, _) in &multi {
                self.cache.remove(s);
            }
        }
        // Optionally push the fresh value to weak representatives.
        if push {
            let value = payload.expect("write payload");
            for site in self.configs[&suite].assignment.weak_sites() {
                ctx.send(
                    site,
                    Msg::UpdateWeak {
                        suite,
                        version,
                        value: value.clone(),
                    },
                );
            }
        }
        self.complete(
            req,
            Ok(OpSuccess {
                version,
                value: None,
                multi,
            }),
            ctx,
        );
    }

    fn on_config_resp(
        &mut self,
        suite: ObjectId,
        req: ReqId,
        config: SuiteConfig,
        ctx: &mut NodeCtx<'_, Msg>,
    ) {
        let newer = self
            .configs
            .get(&suite)
            .is_none_or(|c| config.generation > c.generation);
        if newer {
            self.stats.config_refreshes += 1;
            self.configs.insert(suite, config);
            // The cached quorum plan ranks the old membership; rebuild it
            // lazily against the adopted configuration.
            self.plans.remove(&suite);
            // An adopted configuration also invalidates the attached weak
            // representative's entry and any live lease on it: the entry
            // was vouched for under quorums that no longer govern.
            if self.options.weak_rep.is_some() {
                self.cache.remove(&suite);
            }
        }
        if matches!(
            self.ops.get(&req).map(|st| &st.phase),
            Some(Phase::RefreshConfig)
        ) {
            self.restart_op(req, ctx);
        }
    }

    fn on_phase_timeout(&mut self, req: ReqId, ctx: &mut NodeCtx<'_, Msg>) {
        #[allow(clippy::enum_variant_names)]
        enum Next {
            FailUnavailable(OpKind),
            NextCandidate,
            AbortAndFail(Vec<SiteId>, ObjectId, OpKind),
            ResendCommit(Vec<SiteId>, ObjectId, u64),
            GiveUpIndeterminate,
        }
        let (next, silent) = {
            let Some(st) = self.ops.get_mut(&req) else {
                return;
            };
            self.stats.timeouts += 1;
            let suite = st.suite;
            match &mut st.phase {
                // The sites that never answered this phase feed the
                // suspicion tracker alongside the phase transition itself.
                Phase::Inquire { versions, .. } => {
                    let silent: Vec<SiteId> = self
                        .configs
                        .get(&suite)
                        .map(|cfg| {
                            cfg.assignment
                                .all_sites()
                                .into_iter()
                                .filter(|s| !versions.contains_key(s))
                                .collect()
                        })
                        .unwrap_or_default();
                    (Next::FailUnavailable(st.kind), silent)
                }
                Phase::RefreshConfig | Phase::MultiInquire { .. } => {
                    (Next::FailUnavailable(st.kind), Vec::new())
                }
                // A piggybacked read whose leader never resolved: fail
                // the attempt and retry independently (the retry leads
                // its own inquiry if none is in flight by then).
                Phase::Piggyback { .. } => (Next::FailUnavailable(st.kind), Vec::new()),
                Phase::Fetch {
                    candidates,
                    idx,
                    hedged,
                    ..
                } => {
                    let mut silent = Vec::new();
                    if let Some(&cur) = candidates.get(*idx) {
                        silent.push(cur);
                    }
                    if let Some(h) = *hedged {
                        if !silent.contains(&h) {
                            silent.push(h);
                        }
                    }
                    (Next::NextCandidate, silent)
                }
                Phase::Prepare { quorum, yes, .. } => {
                    let silent = quorum
                        .iter()
                        .copied()
                        .filter(|s| !yes.contains(s))
                        .collect();
                    (Next::AbortAndFail(quorum.clone(), suite, st.kind), silent)
                }
                Phase::MultiPrepare {
                    participants, yes, ..
                } => {
                    let silent = participants
                        .iter()
                        .copied()
                        .filter(|s| !yes.contains(s))
                        .collect();
                    (
                        Next::AbortAndFail(participants.clone(), suite, st.kind),
                        silent,
                    )
                }
                Phase::CommitWait {
                    quorum,
                    acked,
                    resends,
                    ..
                } => {
                    let missing: Vec<SiteId> = quorum
                        .iter()
                        .copied()
                        .filter(|s| !acked.contains(s))
                        .collect();
                    if *resends >= self.options.commit_resend_limit {
                        (Next::GiveUpIndeterminate, missing)
                    } else {
                        *resends += 1;
                        st.seq += 1;
                        (Next::ResendCommit(missing.clone(), suite, st.seq), missing)
                    }
                }
                Phase::MultiCommit {
                    participants,
                    acked,
                    resends,
                    ..
                } => {
                    let missing: Vec<SiteId> = participants
                        .iter()
                        .copied()
                        .filter(|s| !acked.contains(s))
                        .collect();
                    if *resends >= self.options.commit_resend_limit {
                        (Next::GiveUpIndeterminate, missing)
                    } else {
                        *resends += 1;
                        st.seq += 1;
                        (Next::ResendCommit(missing.clone(), suite, st.seq), missing)
                    }
                }
            }
        };
        self.note_unanswered(&silent);
        match next {
            Next::FailUnavailable(kind) => {
                self.fail_attempt(req, OpError::Unavailable { kind }, ctx)
            }
            Next::NextCandidate => {
                self.trace_timeout_legs(req, ctx.now());
                self.try_next_candidate(req, None, ctx)
            }
            Next::AbortAndFail(quorum, suite, kind) => {
                for site in quorum {
                    ctx.send(site, Msg::Abort { suite, req });
                }
                self.fail_attempt(req, OpError::Unavailable { kind }, ctx);
            }
            Next::ResendCommit(missing, suite, seq) => {
                for site in missing {
                    ctx.send(site, Msg::Commit { suite, req });
                }
                arm_timer(
                    &mut self.timers,
                    &mut self.next_timer,
                    req,
                    seq,
                    TimerKind::PhaseTimeout,
                    self.options.phase_timeout,
                    ctx,
                );
            }
            Next::GiveUpIndeterminate => self.complete(req, Err(OpError::Indeterminate), ctx),
        }
    }

    /// Handles one protocol message. Exposed so composite nodes can
    /// delegate.
    pub fn handle(&mut self, from: SiteId, msg: Msg, ctx: &mut NodeCtx<'_, Msg>) {
        // Any message from a site is proof of life for the health tracker.
        self.note_response(from);
        match msg {
            Msg::VersionResp {
                suite,
                req,
                version,
                generation,
            } => {
                if matches!(
                    self.ops.get(&req).map(|st| &st.phase),
                    Some(Phase::MultiInquire { .. })
                ) {
                    self.on_multi_version_resp(from, suite, req, version, generation, ctx);
                } else {
                    self.on_version_resp(from, suite, req, version, generation, ctx);
                }
            }
            Msg::ReadResp {
                suite,
                req,
                version,
                value,
            } => self.on_read_resp(from, suite, req, version, value, ctx),
            Msg::Busy { req, .. } => {
                self.stats.refused_busy += 1;
                if let Some(t) = self.telemetry.as_mut() {
                    t.note_refusal(from.0, ctx.now());
                }
                self.trace_end_leg(req, from, ctx.now(), SpanOutcome::Refused, 0);
                self.try_next_candidate(req, Some(from), ctx)
            }
            Msg::Refused { suite, req, reason } => {
                if let Some(t) = self.telemetry.as_mut() {
                    t.note_refusal(from.0, ctx.now());
                }
                match reason {
                    RefuseReason::Quarantined => {
                        self.stats.refused_quarantined += 1;
                        // The site said so itself: its votes are gone until
                        // repair. Unlike Busy this is long-lived, so demote
                        // it now instead of accruing timeout suspicion.
                        self.mark_quarantined(from);
                    }
                    RefuseReason::Disk => self.stats.refused_disk += 1,
                }
                let in_prepare = self.ops.get(&req).is_some_and(|st| {
                    matches!(st.phase, Phase::Prepare { .. } | Phase::MultiPrepare { .. })
                });
                if in_prepare {
                    // A refused prepare is a no vote: the coordinator
                    // aborts the round and retries on a healthier quorum.
                    self.on_prepare_vote(from, suite, req, Vote::No, ctx);
                } else {
                    self.trace_end_leg(req, from, ctx.now(), SpanOutcome::Refused, 0);
                    self.try_next_candidate(req, Some(from), ctx)
                }
            }
            Msg::PrepareVote { suite, req, vote } => {
                self.on_prepare_vote(from, suite, req, vote, ctx)
            }
            Msg::Ack {
                suite,
                req,
                committed,
            } => self.on_ack(from, suite, req, committed, ctx),
            Msg::StaleConfig { req, .. } => self.enter_refresh(req, from, ctx),
            Msg::ConfigResp { suite, req, config } => self.on_config_resp(suite, req, config, ctx),
            Msg::DecisionReq { suite, req } => {
                // Presumed abort: only a durably logged commit answers yes,
                // and an id with no live operation answers abort. An
                // operation still collecting votes answers *nothing* — a
                // recovering participant probing mid-vote must keep its
                // prepared state (its durable yes may yet count towards a
                // commit) and re-probe after the decision lands.
                let msg = if self.decided_commit.contains(&req) {
                    Msg::Commit { suite, req }
                } else if self.ops.contains_key(&req) {
                    return;
                } else {
                    Msg::Abort { suite, req }
                };
                ctx.send(from, msg);
            }
            // The anti-entropy daemon pushing committed state at an
            // attached weak representative (a no-op with the tier off).
            Msg::UpdateWeak {
                suite,
                version,
                value,
            } => self.gossip_fill(from, suite, version, &value, ctx.now()),
            // Server-bound traffic mis-delivered to a pure client: ignore.
            _ => {}
        }
    }

    /// Timer dispatch. Exposed so composite nodes can delegate.
    pub fn handle_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, Msg>) {
        let Some(entry) = self.timers.remove(&token) else {
            return;
        };
        let Some(st) = self.ops.get(&entry.req) else {
            return;
        };
        if st.seq != entry.seq {
            return; // stale timer from a finished phase
        }
        match entry.kind {
            TimerKind::Retry => self.begin_attempt(entry.req, ctx),
            TimerKind::PhaseTimeout => self.on_phase_timeout(entry.req, ctx),
            TimerKind::Hedge => self.on_hedge(entry.req, ctx),
        }
    }

    /// Crash: in-flight operations are lost; the decision log survives.
    /// The attached weak representative is volatile — a recovered client
    /// restarts with a cold cache and no leases.
    pub fn handle_crash(&mut self) {
        self.ops.clear();
        self.timers.clear();
        self.queue.clear();
        self.active = 0;
        self.cache.clear();
        self.inquiry_leaders.clear();
        self.decided_commit.clear();
        self.decisions.crash();
    }

    /// Recovery: reload the durable decision log.
    pub fn handle_recover(&mut self) {
        self.decisions.recover();
        self.decided_commit = self.decisions.objects().map(|o| ReqId(o.0)).collect();
        // Never reuse counters from before the crash: request ids must stay
        // unique. The decision log's largest counter bounds what was used.
        if let Some(max) = self.decided_commit.iter().map(|r| r.counter()).max() {
            self.next_counter = self.next_counter.max(max + 1);
        }
    }
}

impl Node for ClientNode {
    type Msg = Msg;

    fn on_message(&mut self, from: SiteId, msg: Msg, ctx: &mut NodeCtx<'_, Msg>) {
        self.handle(from, msg, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_, Msg>) {
        self.handle_timer(token, ctx);
    }

    fn on_crash(&mut self) {
        self.handle_crash();
    }

    fn on_recover(&mut self, _ctx: &mut NodeCtx<'_, Msg>) {
        self.handle_recover();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteConfig;
    use wv_sim::DetRng;

    const SUITE: ObjectId = ObjectId(1);
    const CLIENT: SiteId = SiteId(3);

    fn config() -> SuiteConfig {
        SuiteConfig::new(
            SUITE,
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 2),
        )
        .expect("legal")
    }

    fn client() -> ClientNode {
        ClientNode::new(
            CLIENT,
            vec![config()],
            vec![10.0, 20.0, 30.0, 1.0],
            ClientOptions::default(),
        )
    }

    fn effects(ctx: &mut NodeCtx<'_, Msg>) -> Vec<(SiteId, Msg)> {
        ctx.take_effects()
            .into_iter()
            .filter_map(|e| match e {
                wv_net::node::Effect::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn read_inquires_all_hosts_then_fetches_cheapest_current() {
        let mut c = client();
        let mut rng = DetRng::new(1);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 4, "three inquiries plus the optimistic fetch");
        let inquiries = out
            .iter()
            .filter(|(_, m)| matches!(m, Msg::VersionReq { .. }))
            .count();
        assert_eq!(inquiries, 3);
        // The optimistic fetch goes to the cheapest site (0, cost 10).
        assert!(out
            .iter()
            .any(|(to, m)| *to == SiteId(0) && matches!(m, Msg::ReadReq { .. })));
        // Sites 1 and 2 answer: site 1 has v2, site 2 has v1. Current = v2.
        let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
        c.handle(
            SiteId(1),
            Msg::VersionResp {
                suite: SUITE,
                req,
                version: Version(2),
                generation: 1,
            },
            &mut ctx,
        );
        assert!(effects(&mut ctx).is_empty(), "one vote is not a quorum");
        let mut ctx = NodeCtx::new(SimTime::from_millis(12), CLIENT, &mut rng);
        c.handle(
            SiteId(2),
            Msg::VersionResp {
                suite: SUITE,
                req,
                version: Version(1),
                generation: 1,
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 1);
        // Only site 1 holds the current version.
        assert_eq!(out[0].0, SiteId(1));
        assert!(matches!(out[0].1, Msg::ReadReq { .. }));
        // Content arrives; operation completes.
        let mut ctx = NodeCtx::new(SimTime::from_millis(30), CLIENT, &mut rng);
        c.handle(
            SiteId(1),
            Msg::ReadResp {
                suite: SUITE,
                req,
                version: Version(2),
                value: Bytes::from_static(b"data"),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 1);
        let done = &c.completed[0];
        assert_eq!(done.kind, OpKind::Read);
        let ok = done.outcome.as_ref().expect("success");
        assert_eq!(ok.version, Version(2));
        assert_eq!(ok.value.as_deref(), Some(&b"data"[..]));
        assert_eq!(done.latency(), SimDuration::from_millis(30));
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn write_runs_two_phase_commit_over_cheapest_quorum() {
        let mut c = client();
        let mut rng = DetRng::new(2);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_write(SUITE, &b"new"[..], &mut ctx);
        let _ = effects(&mut ctx);
        // All three answer with v0.
        for s in 0..3u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(0),
                    generation: 1,
                },
                &mut ctx,
            );
            let out = effects(&mut ctx);
            if s < 1 {
                assert!(out.is_empty());
            } else if s == 1 {
                // Quorum (2 votes) reached: prepare goes to the two
                // cheapest sites, 0 (cost 10) and 1 (cost 20).
                assert_eq!(out.len(), 2);
                let targets: Vec<SiteId> = out.iter().map(|(t, _)| *t).collect();
                assert_eq!(targets, vec![SiteId(0), SiteId(1)]);
                assert!(out.iter().all(|(_, m)| matches!(
                    m,
                    Msg::Prepare { writes, .. }
                        if writes.len() == 1 && writes[0].version == Version(1)
                )));
            }
        }
        // Votes arrive; on the second yes the commit is decided and logged.
        let mut ctx = NodeCtx::new(SimTime::from_millis(20), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::PrepareVote {
                suite: SUITE,
                req,
                vote: Vote::Yes,
            },
            &mut ctx,
        );
        assert!(effects(&mut ctx).is_empty());
        let mut ctx = NodeCtx::new(SimTime::from_millis(21), CLIENT, &mut rng);
        c.handle(
            SiteId(1),
            Msg::PrepareVote {
                suite: SUITE,
                req,
                vote: Vote::Yes,
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, m)| matches!(m, Msg::Commit { .. })));
        assert!(c.decided_commit.contains(&req));
        // Acks complete the op.
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(30), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::Ack {
                    suite: SUITE,
                    req,
                    committed: true,
                },
                &mut ctx,
            );
        }
        assert_eq!(c.completed.len(), 1);
        let ok = c.completed[0].outcome.as_ref().expect("success");
        assert_eq!(ok.version, Version(1));
    }

    #[test]
    fn no_vote_aborts_and_schedules_retry() {
        let mut c = client();
        let mut rng = DetRng::new(3);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_write(SUITE, &b"w"[..], &mut ctx);
        let _ = effects(&mut ctx);
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(0),
                    generation: 1,
                },
                &mut ctx,
            );
            let _ = effects(&mut ctx);
        }
        let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::PrepareVote {
                suite: SUITE,
                req,
                vote: Vote::No,
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        // Aborts to the quorum members.
        assert!(
            out.iter()
                .filter(|(_, m)| matches!(m, Msg::Abort { .. }))
                .count()
                >= 2
        );
        // Not completed yet: a retry is pending under a fresh request id.
        assert_eq!(c.completed.len(), 0);
        assert_eq!(c.in_flight(), 1);
        assert!(!c.ops.contains_key(&req), "retry must use a fresh req id");
    }

    #[test]
    fn refused_prepare_counts_as_a_no_vote() {
        let mut c = client();
        let mut rng = DetRng::new(35);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_write(SUITE, &b"w"[..], &mut ctx);
        let _ = effects(&mut ctx);
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(0),
                    generation: 1,
                },
                &mut ctx,
            );
            let _ = effects(&mut ctx);
        }
        // One quorum member refuses: its disk is quarantined. The round
        // aborts exactly as on a no vote and a retry is scheduled.
        let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::Refused {
                suite: SUITE,
                req,
                reason: RefuseReason::Quarantined,
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert!(
            out.iter()
                .filter(|(_, m)| matches!(m, Msg::Abort { .. }))
                .count()
                >= 2
        );
        assert_eq!(c.completed.len(), 0);
        assert_eq!(c.in_flight(), 1, "retry pending");
        assert_eq!(c.stats.refused_quarantined, 1);
    }

    #[test]
    fn refused_fetch_moves_to_next_candidate() {
        let mut c = client();
        let mut rng = DetRng::new(36);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(1),
                    generation: 1,
                },
                &mut ctx,
            );
            let _ = effects(&mut ctx);
        }
        // Site 0's disk stalled; the client reads from site 1 instead.
        let mut ctx = NodeCtx::new(SimTime::from_millis(8), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::Refused {
                suite: SUITE,
                req,
                reason: RefuseReason::Disk,
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(1));
        assert!(matches!(out[0].1, Msg::ReadReq { .. }));
        assert_eq!(c.stats.refused_disk, 1);
    }

    #[test]
    fn quarantined_refusal_demotes_the_site_immediately() {
        let mut c = health_client();
        let mut rng = DetRng::new(37);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        assert_eq!(c.stats.suspicions_raised, 0);
        let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::Refused {
                suite: SUITE,
                req,
                reason: RefuseReason::Quarantined,
            },
            &mut ctx,
        );
        let _ = effects(&mut ctx);
        // One refusal is enough — no timeout accrual needed.
        assert_eq!(c.stats.suspicions_raised, 1);
        assert_eq!(c.stats.refused_quarantined, 1);
        assert!(c.health[0].suspected, "site 0 demoted");
    }

    #[test]
    fn busy_fetch_moves_to_next_candidate() {
        let mut c = client();
        let mut rng = DetRng::new(4);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        // Two sites answer, both current at v1 -> candidates [0, 1].
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(1),
                    generation: 1,
                },
                &mut ctx,
            );
            let _ = effects(&mut ctx);
        }
        // Site 0 is busy; the client tries site 1.
        let mut ctx = NodeCtx::new(SimTime::from_millis(8), CLIENT, &mut rng);
        c.handle(SiteId(0), Msg::Busy { suite: SUITE, req }, &mut ctx);
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(1));
        assert!(matches!(out[0].1, Msg::ReadReq { .. }));
    }

    #[test]
    fn unknown_suite_fails_immediately() {
        let mut c = client();
        let mut rng = DetRng::new(5);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        c.start_read(ObjectId(99), &mut ctx);
        assert_eq!(c.completed.len(), 1);
        assert_eq!(c.completed[0].outcome, Err(OpError::UnknownSuite));
    }

    #[test]
    fn decision_req_answers_presumed_abort() {
        let mut c = client();
        let mut rng = DetRng::new(6);
        let unknown = ReqId::new(77, CLIENT);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::DecisionReq {
                suite: SUITE,
                req: unknown,
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert!(matches!(out[0].1, Msg::Abort { .. }));
    }

    #[test]
    fn decision_log_survives_crash() {
        let mut c = client();
        let mut rng = DetRng::new(7);
        // Manufacture a decided commit.
        let req = ReqId::new(5, CLIENT);
        let tx = c.decisions.begin().expect("up");
        c.decisions
            .stage_put(tx, ObjectId(req.0), Version(1), Bytes::new())
            .expect("stage");
        c.decisions.commit(tx).expect("commit");
        c.decided_commit.insert(req);
        c.handle_crash();
        assert!(c.decided_commit.is_empty());
        c.handle_recover();
        assert!(c.decided_commit.contains(&req));
        // And the answer to a probe is commit.
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        c.handle(SiteId(0), Msg::DecisionReq { suite: SUITE, req }, &mut ctx);
        let out = effects(&mut ctx);
        assert!(matches!(out[0].1, Msg::Commit { .. }));
        // Counters moved past anything in the log.
        assert!(c.next_counter > 5);
    }

    #[test]
    fn stale_responses_from_finished_ops_are_ignored() {
        let mut c = client();
        let mut rng = DetRng::new(8);
        let ghost = ReqId::new(40, CLIENT);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::VersionResp {
                suite: SUITE,
                req: ghost,
                version: Version(9),
                generation: 1,
            },
            &mut ctx,
        );
        c.handle(
            SiteId(0),
            Msg::PrepareVote {
                suite: SUITE,
                req: ghost,
                vote: Vote::Yes,
            },
            &mut ctx,
        );
        c.handle(
            SiteId(0),
            Msg::Ack {
                suite: SUITE,
                req: ghost,
                committed: true,
            },
            &mut ctx,
        );
        assert!(effects(&mut ctx).is_empty());
        assert_eq!(c.completed.len(), 0);
    }

    #[test]
    fn newer_generation_in_inquiry_triggers_refresh() {
        let mut c = client();
        let mut rng = DetRng::new(9);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::VersionResp {
                suite: SUITE,
                req,
                version: Version(4),
                generation: 3,
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SiteId(0));
        assert!(matches!(out[0].1, Msg::ConfigReq { .. }));
        // The config arrives; the client adopts it and restarts.
        let cfg2 = config()
            .evolve(VoteAssignment::equal(3), QuorumSpec::new(1, 3))
            .expect("legal");
        let mut cfg3 = cfg2.clone();
        cfg3.generation = 3;
        let mut ctx = NodeCtx::new(SimTime::from_millis(9), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::ConfigResp {
                suite: SUITE,
                req,
                config: cfg3.clone(),
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        // Restarted: fresh inquiries to all sites under the new config,
        // plus the optimistic fetch.
        assert_eq!(out.len(), 4);
        assert_eq!(
            out.iter()
                .filter(|(_, m)| matches!(m, Msg::VersionReq { .. }))
                .count(),
            3
        );
        assert_eq!(c.config(SUITE).expect("cfg").generation, 3);
    }

    #[test]
    fn plan_cache_serves_repeat_decisions_and_invalidates_on_adoption() {
        let mut c = client();
        let mut rng = DetRng::new(11);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        // First decision (the optimistic-fetch guess) builds the plan.
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        assert_eq!(c.stats.plan_cache_misses, 1);
        assert_eq!(c.stats.plan_cache_hits, 0);
        let cached = c.plans.get(&SUITE).expect("plan built");
        assert_eq!(cached.generation, 1);
        // Cheapest-first over costs [10, 20, 30]: 0 before 1 before 2.
        assert_eq!(&cached.site_order[..], [SiteId(0), SiteId(1), SiteId(2)]);
        // Every inquiry response ranks fetch candidates from the cache.
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(1),
                    generation: 1,
                },
                &mut ctx,
            );
            let _ = effects(&mut ctx);
        }
        assert_eq!(c.stats.plan_cache_misses, 1);
        assert_eq!(c.stats.plan_cache_hits, 2);
        // Adopting a newer configuration drops the plan; the next decision
        // rebuilds it against the new generation.
        let cfg2 = config()
            .evolve(VoteAssignment::equal(3), QuorumSpec::new(1, 3))
            .expect("legal");
        let mut ctx = NodeCtx::new(SimTime::from_millis(9), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::ConfigResp {
                suite: SUITE,
                req,
                config: cfg2,
            },
            &mut ctx,
        );
        let _ = effects(&mut ctx);
        assert!(
            c.plans.get(&SUITE).is_none_or(|p| p.generation == 2),
            "stale generation-1 plan must not survive adoption"
        );
        // The next decision rebuilds the plan against generation 2.
        let mut ctx = NodeCtx::new(SimTime::from_millis(20), CLIENT, &mut rng);
        let _ = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        assert_eq!(c.stats.plan_cache_misses, 2, "rebuild counts as a miss");
        assert_eq!(c.plans.get(&SUITE).expect("rebuilt").generation, 2);
    }

    #[test]
    fn plan_cache_is_per_suite_and_adoption_never_evicts_siblings() {
        // Two suites on the same client: plans are keyed by (suite,
        // generation), so adopting a new configuration for one suite must
        // leave the sibling's cached plan untouched — same generation,
        // same shared site-order allocation.
        const SUITE2: ObjectId = ObjectId(2);
        let cfg2 = SuiteConfig::new(
            SUITE2,
            VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
            QuorumSpec::new(2, 2),
        )
        .expect("legal");
        let mut c = ClientNode::new(
            CLIENT,
            vec![config(), cfg2],
            vec![10.0, 20.0, 30.0, 1.0],
            ClientOptions::default(),
        );
        let mut rng = DetRng::new(21);
        for (i, suite) in [SUITE, SUITE2, SUITE, SUITE2].into_iter().enumerate() {
            let mut ctx = NodeCtx::new(SimTime::from_millis(i as u64), CLIENT, &mut rng);
            let _ = c.start_read(suite, &mut ctx);
            let _ = effects(&mut ctx);
        }
        assert_eq!(c.stats.plan_cache_misses, 2, "one build per suite");
        assert_eq!(c.stats.plan_cache_hits, 2, "repeat decisions hit per suite");
        let sibling_order = Arc::clone(&c.plans.get(&SUITE2).expect("plan").site_order);
        // Suite 1 adopts generation 2 (e.g. a ConfigResp from a refresh).
        let adopted = config()
            .evolve(VoteAssignment::equal(3), QuorumSpec::new(1, 3))
            .expect("legal");
        let mut ctx = NodeCtx::new(SimTime::from_millis(9), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::ConfigResp {
                suite: SUITE,
                req: ReqId(999),
                config: adopted,
            },
            &mut ctx,
        );
        let _ = effects(&mut ctx);
        assert!(
            !c.plans.contains_key(&SUITE),
            "adopted suite's plan dropped"
        );
        let sibling = c.plans.get(&SUITE2).expect("sibling survives");
        assert_eq!(sibling.generation, 1);
        assert!(
            Arc::ptr_eq(&sibling.site_order, &sibling_order),
            "sibling plan's shared order allocation is untouched"
        );
        // Next decisions: suite 1 rebuilds (miss, generation 2); suite 2
        // still hits its generation-1 plan.
        let mut ctx = NodeCtx::new(SimTime::from_millis(20), CLIENT, &mut rng);
        let _ = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        let mut ctx = NodeCtx::new(SimTime::from_millis(21), CLIENT, &mut rng);
        let _ = c.start_read(SUITE2, &mut ctx);
        let _ = effects(&mut ctx);
        assert_eq!(c.stats.plan_cache_misses, 3);
        assert_eq!(c.stats.plan_cache_hits, 3);
        assert_eq!(c.plans.get(&SUITE).expect("rebuilt").generation, 2);
    }

    #[test]
    fn random_policy_bypasses_plan_cache() {
        let mut c = ClientNode::new(
            CLIENT,
            vec![config()],
            vec![10.0, 20.0, 30.0, 1.0],
            ClientOptions {
                quorum_policy: QuorumPolicy::Random,
                ..ClientOptions::default()
            },
        );
        let mut rng = DetRng::new(12);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(1),
                    generation: 1,
                },
                &mut ctx,
            );
            let _ = effects(&mut ctx);
        }
        assert!(c.plans.is_empty(), "random ablation must not memoize costs");
        assert_eq!(c.stats.plan_cache_hits, 0);
        assert_eq!(c.stats.plan_cache_misses, 0);
    }

    // ---- load-balanced selection, pipelining, per-site load ----

    fn lb_client(costs: Vec<f64>) -> ClientNode {
        ClientNode::new(
            CLIENT,
            vec![config()],
            costs,
            ClientOptions {
                quorum_policy: QuorumPolicy::LoadBalanced,
                ..ClientOptions::default()
            },
        )
    }

    #[test]
    fn rotate_cost_ties_rotates_only_within_equal_cost_runs() {
        let costs = vec![5.0, 5.0, 5.0, 9.0];
        let order = [SiteId(0), SiteId(1), SiteId(2), SiteId(3)];
        let r0 = rotate_cost_ties(&order, &costs, 0);
        assert_eq!(&r0[..], order);
        let r1 = rotate_cost_ties(&order, &costs, 1);
        assert_eq!(&r1[..], [SiteId(1), SiteId(2), SiteId(0), SiteId(3)]);
        let r2 = rotate_cost_ties(&order, &costs, 2);
        assert_eq!(&r2[..], [SiteId(2), SiteId(0), SiteId(1), SiteId(3)]);
        // The cursor wraps around the run length.
        let r3 = rotate_cost_ties(&order, &costs, 3);
        assert_eq!(&r3[..], order);
    }

    #[test]
    fn load_balanced_spreads_reads_across_cost_ties_deterministically() {
        let run = || {
            let mut c = lb_client(vec![10.0, 10.0, 10.0, 1.0]);
            let mut rng = DetRng::new(13);
            let mut targets = Vec::new();
            for i in 0..6u64 {
                let mut ctx = NodeCtx::new(SimTime::from_millis(i), CLIENT, &mut rng);
                let _ = c.start_read(SUITE, &mut ctx);
                let fetch: Vec<SiteId> = effects(&mut ctx)
                    .into_iter()
                    .filter(|(_, m)| matches!(m, Msg::ReadReq { .. }))
                    .map(|(to, _)| to)
                    .collect();
                assert_eq!(fetch.len(), 1, "one optimistic fetch per read");
                targets.push(fetch[0]);
            }
            (targets, c.stats.plan_cache_misses, c.stats.plan_cache_hits)
        };
        let (targets, misses, hits) = run();
        let distinct: BTreeSet<SiteId> = targets.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            3,
            "equal-cost representatives all take fetch load: {targets:?}"
        );
        assert_eq!(misses, 1, "rotation reuses the cached plan");
        assert_eq!(hits, 5);
        // Rebuilding the same client replays the exact same schedule.
        assert_eq!(run(), (targets, misses, hits));
    }

    #[test]
    fn load_balanced_keeps_expensive_sites_out_of_the_rotation() {
        let mut c = lb_client(vec![10.0, 10.0, 30.0, 1.0]);
        let mut rng = DetRng::new(14);
        for i in 0..6u64 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(i), CLIENT, &mut rng);
            let _ = c.start_read(SUITE, &mut ctx);
            for (to, m) in effects(&mut ctx) {
                if matches!(m, Msg::ReadReq { .. }) {
                    assert_ne!(to, SiteId(2), "rotation must stay within cost ties");
                }
            }
        }
    }

    #[test]
    fn pipeline_depth_one_queues_and_launches_in_fifo_order() {
        let mut c = ClientNode::new(
            CLIENT,
            vec![config()],
            vec![10.0, 20.0, 30.0, 1.0],
            ClientOptions {
                pipeline_depth: Some(1),
                ..ClientOptions::default()
            },
        );
        let mut rng = DetRng::new(15);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let first = c.start_read(SUITE, &mut ctx);
        assert!(
            !effects(&mut ctx).is_empty(),
            "first op launches immediately"
        );
        let mut ctx = NodeCtx::new(SimTime::from_millis(1), CLIENT, &mut rng);
        let second = c.start_read(SUITE, &mut ctx);
        assert!(effects(&mut ctx).is_empty(), "window full: second op waits");
        assert_eq!(c.queued(), 1);
        assert_eq!(c.in_flight(), 2);
        // Finish the first read: sites 1 and 2 report v1, then site 1 serves it.
        for s in 1..3u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req: first,
                    version: Version(1),
                    generation: 1,
                },
                &mut ctx,
            );
            let _ = effects(&mut ctx);
        }
        let mut ctx = NodeCtx::new(SimTime::from_millis(8), CLIENT, &mut rng);
        c.handle(
            SiteId(1),
            Msg::ReadResp {
                suite: SUITE,
                req: first,
                version: Version(1),
                value: Bytes::from_static(b"v"),
            },
            &mut ctx,
        );
        let out = effects(&mut ctx);
        assert_eq!(c.completed.len(), 1);
        assert_eq!(c.queued(), 0, "freed slot launches the queued op");
        assert!(
            out.iter()
                .any(|(_, m)| matches!(m, Msg::VersionReq { req, .. } if *req == second)),
            "second op's inquiries ride the completion turn"
        );
    }

    #[test]
    fn site_load_counts_data_requests_not_inquiries() {
        let mut c = client();
        let mut rng = DetRng::new(16);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let _ = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        // One optimistic fetch to the cheapest site; inquiries are free.
        assert_eq!(c.site_load(), &[1, 0, 0, 0]);
    }

    // ---- health tracking, hedging, adaptive timeouts, backoff ----

    fn health_client() -> ClientNode {
        ClientNode::new(
            CLIENT,
            vec![config()],
            vec![10.0, 20.0, 30.0, 1.0],
            ClientOptions {
                health: Some(HealthOptions::default()),
                ..ClientOptions::default()
            },
        )
    }

    #[allow(clippy::type_complexity)]
    fn split_effects(ctx: &mut NodeCtx<'_, Msg>) -> (Vec<(SiteId, Msg)>, Vec<(SimDuration, u64)>) {
        let mut sends = Vec::new();
        let mut timers = Vec::new();
        for e in ctx.take_effects() {
            match e {
                wv_net::node::Effect::Send { to, msg } => sends.push((to, msg)),
                wv_net::node::Effect::Timer { delay, token } => timers.push((delay, token)),
            }
        }
        (sends, timers)
    }

    /// Drives a health-enabled read to the fetch phase with candidates
    /// [1, 2] (both current at v2, site 0 silent) and returns
    /// `(client, rng, req, phase_timeout_token, hedge_token)`.
    fn fetch_with_hedge_armed() -> (ClientNode, DetRng, ReqId, u64, u64) {
        let mut c = health_client();
        let mut rng = DetRng::new(21);
        let req = {
            let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
            let req = c.start_read(SUITE, &mut ctx);
            let _ = ctx.take_effects();
            req
        };
        let mut last_timers = Vec::new();
        let mut last_sends = Vec::new();
        for (s, at) in [(1u16, 10u64), (2, 12)] {
            let mut ctx = NodeCtx::new(SimTime::from_millis(at), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(2),
                    generation: 1,
                },
                &mut ctx,
            );
            (last_sends, last_timers) = split_effects(&mut ctx);
        }
        // The fetch went to site 1 (cheapest current holder) with two
        // timers armed: the adaptive phase timeout and the earlier hedge.
        assert_eq!(
            last_sends,
            vec![(SiteId(1), Msg::ReadReq { suite: SUITE, req })]
        );
        assert_eq!(last_timers.len(), 2, "phase timeout plus hedge");
        last_timers.sort(); // shorter delay first: the hedge
        let (hedge_delay, hedge_token) = last_timers[0];
        let (phase_delay, phase_token) = last_timers[1];
        assert!(hedge_delay < phase_delay);
        (c, rng, req, phase_token, hedge_token)
    }

    #[test]
    fn hedge_launches_next_candidate_without_abandoning_the_first() {
        let (mut c, mut rng, req, _phase_token, hedge_token) = fetch_with_hedge_armed();
        let mut ctx = NodeCtx::new(SimTime::from_millis(110), CLIENT, &mut rng);
        c.handle_timer(hedge_token, &mut ctx);
        let (sends, timers) = split_effects(&mut ctx);
        assert_eq!(sends, vec![(SiteId(2), Msg::ReadReq { suite: SUITE, req })]);
        assert!(timers.is_empty(), "a hedge arms no follow-up timer");
        assert_eq!(c.stats.hedges_fired, 1);
        assert_eq!(c.stats.timeouts, 0, "a hedge firing is not a timeout");
        // The hedge target answers current first: that is a hedge win.
        let mut ctx = NodeCtx::new(SimTime::from_millis(150), CLIENT, &mut rng);
        c.handle(
            SiteId(2),
            Msg::ReadResp {
                suite: SUITE,
                req,
                version: Version(2),
                value: Bytes::from_static(b"v2"),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 1);
        assert!(c.completed[0].outcome.is_ok());
        assert_eq!(c.stats.hedge_wins, 1);
    }

    #[test]
    fn hedged_and_original_timing_out_count_one_timeout() {
        // Regression: the hedge shares the phase's timeout. When both the
        // original candidate and the hedge stay silent, exactly one
        // timeout is recorded — the hedge timer is structurally incapable
        // of reaching the timeout bookkeeping.
        let (mut c, mut rng, _req, phase_token, hedge_token) = fetch_with_hedge_armed();
        let mut ctx = NodeCtx::new(SimTime::from_millis(110), CLIENT, &mut rng);
        c.handle_timer(hedge_token, &mut ctx);
        let _ = ctx.take_effects();
        assert_eq!(c.stats.hedges_fired, 1);
        // Neither site 1 nor the hedged site 2 answers; the phase timer
        // fires once for the whole (hedged) phase.
        let mut ctx = NodeCtx::new(SimTime::from_millis(320), CLIENT, &mut rng);
        c.handle_timer(phase_token, &mut ctx);
        assert_eq!(c.stats.timeouts, 1, "one phase, one timeout, hedge or not");
        // Both silent sites picked up suspicion.
        assert!(c.health[1].suspicion > 0.0);
        assert!(c.health[2].suspicion > 0.0);
        // The operation moved on to the next candidate rather than dying.
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn suspected_sites_are_demoted_and_cleared_by_any_response() {
        let mut c = health_client();
        c.note_unanswered(&[SiteId(0)]);
        assert_eq!(c.stats.suspicions_raised, 0, "one strike is not enough");
        c.note_unanswered(&[SiteId(0)]);
        assert_eq!(c.stats.suspicions_raised, 1);
        let order = c.reorder_by_health(Arc::from(vec![SiteId(0), SiteId(1), SiteId(2)]));
        assert_eq!(
            &order[..],
            [SiteId(1), SiteId(2), SiteId(0)],
            "suspected site demoted, cost order kept within groups"
        );
        assert_eq!(c.stats.reroutes, 1);
        // Any message from the site clears the suspicion.
        c.note_response(SiteId(0));
        let order = c.reorder_by_health(Arc::from(vec![SiteId(0), SiteId(1), SiteId(2)]));
        assert_eq!(&order[..], [SiteId(0), SiteId(1), SiteId(2)]);
        assert_eq!(c.stats.reroutes, 1, "no reroute when nothing moved");
    }

    #[test]
    fn routing_around_everyone_is_routing_nowhere() {
        let mut c = health_client();
        for _ in 0..2 {
            c.note_unanswered(&[SiteId(0), SiteId(1), SiteId(2)]);
        }
        assert_eq!(c.stats.suspicions_raised, 3);
        let order = c.reorder_by_health(Arc::from(vec![SiteId(0), SiteId(1), SiteId(2)]));
        assert_eq!(&order[..], [SiteId(0), SiteId(1), SiteId(2)]);
        assert_eq!(c.stats.reroutes, 0);
    }

    #[test]
    fn adaptive_phase_timeout_tracks_the_slowest_contacted_site() {
        let mut c = health_client();
        // EWMA seeds at 2x the static one-way cost: site 2 starts at 60ms.
        assert_eq!(
            c.phase_delay(&[SiteId(0), SiteId(2)]),
            SimDuration::from_millis_f64(60.0 * 6.0)
        );
        // Clamped below by min_timeout (site 0: 20ms RTT * 6 = 120ms)…
        assert_eq!(c.phase_delay(&[SiteId(0)]), SimDuration::from_millis(300));
        // …and above by the fixed phase timeout.
        c.note_rtt(SiteId(2), 1e7);
        assert_eq!(c.phase_delay(&[SiteId(2)]), c.options.phase_timeout);
        // Health off: always the fixed phase timeout.
        let fixed = client();
        assert_eq!(fixed.phase_delay(&[SiteId(0)]), fixed.options.phase_timeout);
    }

    #[test]
    fn rtt_samples_fold_into_the_ewma() {
        let mut c = health_client();
        // Site 1 seeds at 40ms; one 10ms sample with alpha 0.3 gives 31ms.
        c.note_rtt(SiteId(1), 10.0);
        assert!((c.health[1].rtt_ms - 31.0).abs() < 1e-9);
        // Garbage samples are dropped.
        c.note_rtt(SiteId(1), f64::NAN);
        c.note_rtt(SiteId(1), -5.0);
        assert!((c.health[1].rtt_ms - 31.0).abs() < 1e-9);
    }

    #[test]
    fn retry_backoff_doubles_caps_and_jitters_deterministically() {
        let c = client();
        let req = ReqId::new(42, CLIENT);
        let base = c.options.backoff.as_millis_f64();
        let cap = c.options.backoff_cap.as_millis_f64();
        for attempts in 1..12u32 {
            let d = c.retry_delay(req, attempts).as_millis_f64();
            let step = (base * 2f64.powi(attempts as i32 - 1)).min(cap);
            assert!(
                d >= step && d <= step * 1.5,
                "attempt {attempts}: delay {d}ms outside [{step}, {}]",
                step * 1.5
            );
            // Deterministic: same inputs, same delay.
            assert_eq!(c.retry_delay(req, attempts), c.retry_delay(req, attempts));
        }
        // Jitter decorrelates distinct requests retrying in lockstep.
        assert_ne!(
            c.retry_delay(ReqId::new(42, CLIENT), 3),
            c.retry_delay(ReqId::new(43, CLIENT), 3),
        );
    }

    // ---- attached weak representative (cache tier) ----

    fn cache_client(lease: Option<SimDuration>) -> ClientNode {
        let wr = match lease {
            Some(ttl) => WeakRepOptions::lease(ttl),
            None => WeakRepOptions::validated(),
        };
        ClientNode::new(
            CLIENT,
            vec![config()],
            vec![10.0, 20.0, 30.0, 1.0],
            ClientOptions {
                weak_rep: Some(wr),
                ..ClientOptions::default()
            },
        )
    }

    #[test]
    fn validated_cache_completes_from_local_copy_when_quorum_confirms() {
        let mut c = cache_client(None);
        c.fill_cache(
            SUITE,
            Version(2),
            &Bytes::from_static(b"warm"),
            SimTime::ZERO,
        );
        let mut rng = DetRng::new(10);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let out = effects(&mut ctx);
        // A warm cache stands in for the optimistic fetch: inquiries only.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, m)| matches!(m, Msg::VersionReq { .. })));
        // The quorum confirms v2 is current: the read completes locally.
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(2),
                    generation: 1,
                },
                &mut ctx,
            );
            assert!(
                effects(&mut ctx).is_empty(),
                "a cache-served read costs zero data rpcs"
            );
        }
        assert_eq!(c.completed.len(), 1);
        let ok = c.completed[0].outcome.as_ref().expect("success");
        assert_eq!(ok.version, Version(2));
        assert_eq!(ok.value.as_deref(), Some(&b"warm"[..]));
        assert_eq!(c.stats.cache_hits, 1);
        assert_eq!(c.stats.cache_misses, 0);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn stale_cache_falls_through_to_fetch_and_counts_a_miss() {
        let mut c = cache_client(None);
        c.fill_cache(
            SUITE,
            Version(1),
            &Bytes::from_static(b"old"),
            SimTime::ZERO,
        );
        let mut rng = DetRng::new(11);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        // The quorum reports v2: the local copy is behind, so fetch.
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(2),
                    generation: 1,
                },
                &mut ctx,
            );
        }
        let mut ctx = NodeCtx::new(SimTime::from_millis(30), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::ReadResp {
                suite: SUITE,
                req,
                version: Version(2),
                value: Bytes::from_static(b"new"),
            },
            &mut ctx,
        );
        assert_eq!(c.completed.len(), 1);
        assert_eq!(c.stats.cache_hits, 0);
        assert_eq!(c.stats.cache_misses, 1);
        // The fetch refreshed the local copy for the next read.
        assert_eq!(c.cache.get(&SUITE).map(|e| e.version), Some(Version(2)));
    }

    #[test]
    fn lease_serves_quorum_free_and_expires_exactly_at_the_boundary() {
        let mut c = cache_client(Some(SimDuration::from_millis(100)));
        c.fill_cache(
            SUITE,
            Version(1),
            &Bytes::from_static(b"leased"),
            SimTime::ZERO,
        );
        let mut rng = DetRng::new(12);
        // t = 99ms: inside the lease — served with zero messages.
        let mut ctx = NodeCtx::new(SimTime::from_millis(99), CLIENT, &mut rng);
        c.start_read(SUITE, &mut ctx);
        assert!(effects(&mut ctx).is_empty(), "lease reads are quorum-free");
        assert_eq!(c.completed.len(), 1);
        assert_eq!(c.stats.cache_hits, 1);
        // t = 100ms: the lease expires *exactly* at read time — the read
        // must fall back to the quorum path, not serve stale data.
        let mut ctx = NodeCtx::new(SimTime::from_millis(100), CLIENT, &mut rng);
        c.start_read(SUITE, &mut ctx);
        let out = effects(&mut ctx);
        assert_eq!(c.stats.lease_expiries, 1);
        assert_eq!(
            out.iter()
                .filter(|(_, m)| matches!(m, Msg::VersionReq { .. }))
                .count(),
            3,
            "expired lease goes back to the inquiry quorum"
        );
    }

    #[test]
    fn pipelined_reads_piggyback_on_one_inquiry() {
        let mut c = ClientNode::new(
            CLIENT,
            vec![config()],
            vec![10.0, 20.0, 30.0, 1.0],
            ClientOptions {
                weak_rep: Some(WeakRepOptions::validated()),
                pipeline_depth: Some(4),
                ..ClientOptions::default()
            },
        );
        c.fill_cache(
            SUITE,
            Version(1),
            &Bytes::from_static(b"warm"),
            SimTime::ZERO,
        );
        let mut rng = DetRng::new(13);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let leader = c.start_read(SUITE, &mut ctx);
        let _follower = c.start_read(SUITE, &mut ctx);
        let out = effects(&mut ctx);
        assert_eq!(out.len(), 3, "the second read rides the first's inquiry");
        assert_eq!(c.stats.piggybacked_inquiries, 1);
        // One quorum round settles both reads from the local copy.
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req: leader,
                    version: Version(1),
                    generation: 1,
                },
                &mut ctx,
            );
            assert!(effects(&mut ctx).is_empty());
        }
        assert_eq!(c.completed.len(), 2);
        assert!(c.completed.iter().all(|op| op.outcome.is_ok()));
        assert_eq!(c.stats.cache_hits, 2);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn crash_during_refresh_cold_starts_the_cache() {
        let mut c = cache_client(None);
        let mut rng = DetRng::new(14);
        let mut ctx = NodeCtx::new(SimTime::ZERO, CLIENT, &mut rng);
        let req = c.start_read(SUITE, &mut ctx);
        let _ = effects(&mut ctx);
        // The quorum answers; the refresh fetch is now in flight.
        for s in 0..2u16 {
            let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
            c.handle(
                SiteId(s),
                Msg::VersionResp {
                    suite: SUITE,
                    req,
                    version: Version(1),
                    generation: 1,
                },
                &mut ctx,
            );
        }
        c.handle_crash();
        // The refresh lands after the crash: it belongs to a dead
        // operation and must not fill the (now cold) cache.
        let mut ctx = NodeCtx::new(SimTime::from_millis(30), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::ReadResp {
                suite: SUITE,
                req,
                version: Version(1),
                value: Bytes::from_static(b"late"),
            },
            &mut ctx,
        );
        assert!(c.completed.is_empty());
        assert!(c.cache.is_empty(), "no fill from a dead operation");
        assert!(c.inquiry_leaders.is_empty());
    }

    #[test]
    fn newer_config_invalidates_the_cache_mid_lease() {
        let mut c = cache_client(Some(SimDuration::from_secs(10)));
        c.fill_cache(
            SUITE,
            Version(3),
            &Bytes::from_static(b"pre"),
            SimTime::ZERO,
        );
        let next = config()
            .evolve(
                VoteAssignment::new([(SiteId(0), 1), (SiteId(1), 1), (SiteId(2), 1)]),
                QuorumSpec::new(2, 2),
            )
            .expect("legal");
        let mut rng = DetRng::new(15);
        let mut ctx = NodeCtx::new(SimTime::from_millis(5), CLIENT, &mut rng);
        c.handle(
            SiteId(0),
            Msg::ConfigResp {
                suite: SUITE,
                req: ReqId::new(999, CLIENT),
                config: next,
            },
            &mut ctx,
        );
        // A read well inside the original lease window goes to quorum:
        // the lease died with the configuration it was granted under.
        let mut ctx = NodeCtx::new(SimTime::from_millis(10), CLIENT, &mut rng);
        c.start_read(SUITE, &mut ctx);
        assert!(
            !effects(&mut ctx).is_empty(),
            "reconfiguration must invalidate the attached weak rep"
        );
        assert_eq!(c.stats.cache_hits, 0);
        assert!(c.cache.is_empty());
    }
}
