//! Quorum specifications and quorum-set mathematics.
//!
//! Legality is the paper's rule: `r + w > N` (every read quorum intersects
//! every write quorum in at least one strong representative) and
//! `1 <= r, w <= N`. Write–write serialisation comes from the transaction
//! system — a writer reads the current version number under lock inside
//! the same transaction that installs the new version, and `r + w > N`
//! puts that read in conflict with every concurrent writer's install set.

use wv_net::SiteId;

use crate::votes::VoteAssignment;

/// Read and write quorum sizes, in votes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QuorumSpec {
    /// Votes required to read.
    pub read: u32,
    /// Votes required to write.
    pub write: u32,
}

/// Why a quorum specification is illegal for an assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuorumError {
    /// `r + w <= N`: a read quorum and a write quorum could miss each
    /// other, letting a stale copy pose as current.
    NoIntersection {
        /// Total votes.
        total: u32,
    },
    /// A quorum of zero votes, or larger than the total, can never be
    /// meaningful.
    OutOfRange {
        /// Total votes.
        total: u32,
    },
}

impl std::fmt::Display for QuorumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuorumError::NoIntersection { total } => {
                write!(f, "r + w must exceed total votes N = {total}")
            }
            QuorumError::OutOfRange { total } => {
                write!(f, "quorums must lie in 1..={total}")
            }
        }
    }
}

impl std::error::Error for QuorumError {}

impl QuorumSpec {
    /// Builds a spec; legality is checked against an assignment with
    /// [`QuorumSpec::validate`].
    pub const fn new(read: u32, write: u32) -> Self {
        QuorumSpec { read, write }
    }

    /// Majority quorums for `total` votes: `r = w = floor(N/2) + 1`.
    pub const fn majority(total: u32) -> Self {
        let m = total / 2 + 1;
        QuorumSpec { read: m, write: m }
    }

    /// Read-one / write-all: `r = 1, w = N`.
    pub const fn read_one_write_all(total: u32) -> Self {
        QuorumSpec {
            read: 1,
            write: total,
        }
    }

    /// Read-all / write-one: `r = N, w = 1` — the write-optimised extreme.
    pub const fn read_all_write_one(total: u32) -> Self {
        QuorumSpec {
            read: total,
            write: 1,
        }
    }

    /// Checks legality against `assignment`.
    pub fn validate(&self, assignment: &VoteAssignment) -> Result<(), QuorumError> {
        let total = assignment.total();
        if self.read == 0 || self.write == 0 || self.read > total || self.write > total {
            return Err(QuorumError::OutOfRange { total });
        }
        if self.read + self.write <= total {
            return Err(QuorumError::NoIntersection { total });
        }
        Ok(())
    }

    /// True if `sites` carry enough votes to read.
    pub fn is_read_quorum(&self, assignment: &VoteAssignment, sites: &[SiteId]) -> bool {
        assignment.votes_in(sites) >= self.read
    }

    /// True if `sites` carry enough votes to write.
    pub fn is_write_quorum(&self, assignment: &VoteAssignment, sites: &[SiteId]) -> bool {
        assignment.votes_in(sites) >= self.write
    }
}

/// Enumerates the *minimal* site sets whose votes reach `needed`.
///
/// A set is minimal if removing any site drops it below the threshold.
/// Exponential in the number of strong sites, so intended for the small
/// configurations of the experiments (the paper's examples have 3–7
/// representatives).
pub fn minimal_quorums(assignment: &VoteAssignment, needed: u32) -> Vec<Vec<SiteId>> {
    let strong = assignment.strong_sites();
    let n = strong.len();
    assert!(
        n <= 20,
        "quorum enumeration is exponential; {n} sites is too many"
    );
    let mut result: Vec<Vec<SiteId>> = Vec::new();
    for mask in 1u32..(1 << n) {
        let members: Vec<SiteId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| strong[i])
            .collect();
        if assignment.votes_in(&members) < needed {
            continue;
        }
        // Minimality: every member must be load-bearing.
        let minimal = members.iter().all(|drop| {
            let rest: Vec<SiteId> = members.iter().copied().filter(|s| s != drop).collect();
            assignment.votes_in(&rest) < needed
        });
        if minimal {
            result.push(members);
        }
    }
    result.sort();
    result
}

/// The cheapest site set reaching `needed` votes, where each site's cost is
/// given by `cost`; ties break toward fewer sites, then lexicographic.
///
/// "Cheapest" means minimal *maximum* cost over the set: quorum operations
/// proceed in parallel, so the set's latency is its slowest member. Returns
/// `None` if all strong sites together fall short (e.g. too many crashed
/// sites excluded by the caller).
pub fn cheapest_quorum(
    assignment: &VoteAssignment,
    needed: u32,
    candidates: &[SiteId],
    cost: impl Fn(SiteId) -> f64,
) -> Option<Vec<SiteId>> {
    // Sort candidate strong sites by cost; greedily take prefixes. Because
    // the metric is max-cost, the optimal set is always a prefix of the
    // cost order restricted to sites that contribute votes: adding a
    // cheaper site never raises the max.
    let mut strong: Vec<SiteId> = candidates
        .iter()
        .copied()
        .filter(|s| assignment.votes_of(*s) > 0)
        .collect();
    strong.sort_by(|a, b| {
        cost(*a)
            .partial_cmp(&cost(*b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    let mut chosen = Vec::new();
    let mut votes = 0;
    for s in strong {
        chosen.push(s);
        votes += assignment.votes_of(s);
        if votes >= needed {
            // Drop any member made redundant by later cheaper picks — with
            // prefix-greedy this only removes sites whose votes are not
            // needed for the threshold (possible with unequal votes).
            prune_redundant(assignment, needed, &mut chosen);
            return Some(chosen);
        }
    }
    None
}

/// [`cheapest_quorum`] for candidates already in cost order.
///
/// Callers that memoize the cost-sorted site order (the client's quorum-plan
/// cache) filter it down to the live candidates — an order-preserving filter
/// of a sorted list is still sorted — and skip the per-decision sort here.
/// Given candidates in the same `(cost, site id)` order `cheapest_quorum`
/// would produce, the result is identical.
pub fn cheapest_quorum_presorted(
    assignment: &VoteAssignment,
    needed: u32,
    sorted_candidates: &[SiteId],
) -> Option<Vec<SiteId>> {
    let mut chosen = Vec::new();
    let mut votes = 0;
    for &s in sorted_candidates {
        if assignment.votes_of(s) == 0 {
            continue;
        }
        chosen.push(s);
        votes += assignment.votes_of(s);
        if votes >= needed {
            prune_redundant(assignment, needed, &mut chosen);
            return Some(chosen);
        }
    }
    None
}

/// Removes members (most expensive first is irrelevant here — any
/// redundant member may go) whose removal keeps the set at or above the
/// threshold.
fn prune_redundant(assignment: &VoteAssignment, needed: u32, set: &mut Vec<SiteId>) {
    let mut i = 0;
    while i < set.len() {
        let without: Vec<SiteId> = set
            .iter()
            .copied()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, s)| s)
            .collect();
        if assignment.votes_in(&without) >= needed {
            set.remove(i);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u16) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn validation_accepts_paper_examples() {
        // Example 1: <1,0,0>, r=1, w=1.
        let e1 = VoteAssignment::new([(s(0), 1), (s(1), 0), (s(2), 0)]);
        QuorumSpec::new(1, 1).validate(&e1).expect("example 1");
        // Example 2: <2,1,1>, r=2, w=3.
        let e2 = VoteAssignment::new([(s(0), 2), (s(1), 1), (s(2), 1)]);
        QuorumSpec::new(2, 3).validate(&e2).expect("example 2");
        // Example 3: <1,1,1>, r=1, w=3.
        let e3 = VoteAssignment::equal(3);
        QuorumSpec::new(1, 3).validate(&e3).expect("example 3");
    }

    #[test]
    fn validation_rejects_non_intersecting() {
        let a = VoteAssignment::equal(4);
        assert_eq!(
            QuorumSpec::new(2, 2).validate(&a),
            Err(QuorumError::NoIntersection { total: 4 })
        );
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let a = VoteAssignment::equal(3);
        assert!(matches!(
            QuorumSpec::new(0, 3).validate(&a),
            Err(QuorumError::OutOfRange { .. })
        ));
        assert!(matches!(
            QuorumSpec::new(4, 1).validate(&a),
            Err(QuorumError::OutOfRange { .. })
        ));
        assert!(matches!(
            QuorumSpec::new(1, 0).validate(&a),
            Err(QuorumError::OutOfRange { .. })
        ));
    }

    #[test]
    fn canned_specs() {
        assert_eq!(QuorumSpec::majority(5), QuorumSpec::new(3, 3));
        assert_eq!(QuorumSpec::majority(4), QuorumSpec::new(3, 3));
        assert_eq!(QuorumSpec::read_one_write_all(7), QuorumSpec::new(1, 7));
        assert_eq!(QuorumSpec::read_all_write_one(7), QuorumSpec::new(7, 1));
        let a = VoteAssignment::equal(7);
        QuorumSpec::majority(7)
            .validate(&a)
            .expect("majority legal");
        QuorumSpec::read_one_write_all(7)
            .validate(&a)
            .expect("rowa legal");
        QuorumSpec::read_all_write_one(7)
            .validate(&a)
            .expect("rawo legal");
    }

    #[test]
    fn quorum_membership() {
        let a = VoteAssignment::new([(s(0), 2), (s(1), 1), (s(2), 1)]);
        let q = QuorumSpec::new(2, 3);
        assert!(q.is_read_quorum(&a, &[s(0)]));
        assert!(!q.is_read_quorum(&a, &[s(1)]));
        assert!(q.is_read_quorum(&a, &[s(1), s(2)]));
        assert!(q.is_write_quorum(&a, &[s(0), s(1)]));
        assert!(!q.is_write_quorum(&a, &[s(1), s(2)]));
        assert!(q.is_write_quorum(&a, &[s(0), s(1), s(2)]));
    }

    #[test]
    fn minimal_quorum_enumeration() {
        let a = VoteAssignment::new([(s(0), 2), (s(1), 1), (s(2), 1)]);
        // Read quorum 2: {0} alone, or {1,2}.
        assert_eq!(minimal_quorums(&a, 2), vec![vec![s(0)], vec![s(1), s(2)]]);
        // Write quorum 3: {0,1}, {0,2}.
        assert_eq!(
            minimal_quorums(&a, 3),
            vec![vec![s(0), s(1)], vec![s(0), s(2)]]
        );
    }

    #[test]
    fn minimal_quorums_ignore_weak_sites() {
        let a = VoteAssignment::new([(s(0), 1), (s(1), 0), (s(2), 0)]);
        assert_eq!(minimal_quorums(&a, 1), vec![vec![s(0)]]);
    }

    #[test]
    fn cheapest_quorum_minimises_max_cost() {
        let a = VoteAssignment::equal(3);
        let cost = |site: SiteId| [75.0, 100.0, 750.0][site.index()];
        let q = cheapest_quorum(&a, 2, &a.strong_sites(), cost).expect("exists");
        assert_eq!(q, vec![s(0), s(1)]);
        let q = cheapest_quorum(&a, 3, &a.strong_sites(), cost).expect("exists");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn cheapest_quorum_prunes_redundant_members() {
        // Costs make the 1-vote sites cheaper than the 2-vote site; after
        // greedily adding s0, the cheap singletons are redundant.
        let a = VoteAssignment::new([(s(0), 2), (s(1), 1), (s(2), 1)]);
        let cost = |site: SiteId| [50.0, 10.0, 20.0][site.index()];
        let q = cheapest_quorum(&a, 2, &a.strong_sites(), cost).expect("exists");
        // s1 + s2 reach 2 votes at max cost 20 < 50.
        assert_eq!(q, vec![s(1), s(2)]);
    }

    #[test]
    fn cheapest_quorum_respects_candidate_filter() {
        let a = VoteAssignment::equal(3);
        let cost = |_: SiteId| 1.0;
        // Only sites 1 and 2 are reachable; a 3-vote quorum is impossible.
        assert!(cheapest_quorum(&a, 3, &[s(1), s(2)], cost).is_none());
        let q = cheapest_quorum(&a, 2, &[s(1), s(2)], cost).expect("exists");
        assert_eq!(q, vec![s(1), s(2)]);
    }

    mod props {
        //! Randomized invariant checks over seeded cases (offline stand-in
        //! for the old proptest strategies; every seed reproduces exactly).

        use super::*;
        use wv_sim::DetRng;

        /// A random assignment of 1..7 sites with 0..4 votes each, at least
        /// one vote total.
        fn random_assignment(rng: &mut DetRng) -> VoteAssignment {
            loop {
                let n = 1 + rng.below(6) as usize;
                let votes: Vec<u32> = (0..n).map(|_| rng.below(4) as u32).collect();
                if votes.iter().sum::<u32>() > 0 {
                    return VoteAssignment::new(
                        votes
                            .into_iter()
                            .enumerate()
                            .map(|(i, v)| (SiteId::from(i), v)),
                    );
                }
            }
        }

        /// The paper's core safety argument: for any legal (r, w), any
        /// read quorum and any write quorum share a strong site.
        #[test]
        fn read_and_write_quorums_always_intersect() {
            for seed in 0..128u64 {
                let mut rng = DetRng::new(0x1a7e ^ seed);
                let a = random_assignment(&mut rng);
                let r_off = rng.below(3) as u32;
                let w_off = rng.below(3) as u32;
                let total = a.total();
                // Build a legal spec: r + w = N + 1 + slack, clamped.
                let r = (1 + r_off).min(total);
                let w = (total + 1 - r + w_off).min(total);
                let spec = QuorumSpec::new(r, w);
                if spec.validate(&a).is_err() {
                    continue;
                }
                let reads = minimal_quorums(&a, spec.read);
                let writes = minimal_quorums(&a, spec.write);
                for rq in &reads {
                    for wq in &writes {
                        let intersect = rq.iter().any(|s| wq.contains(s));
                        assert!(
                            intersect,
                            "read quorum {rq:?} misses write quorum {wq:?} \
                             under {spec:?} with assignment {a:?}"
                        );
                    }
                }
            }
        }

        /// An illegal spec (r + w <= N) really does admit disjoint
        /// quorums whenever both sides can be formed from disjoint
        /// vote pools — the converse of the safety property.
        #[test]
        fn non_intersecting_specs_are_rejected() {
            for seed in 0..256u64 {
                let mut rng = DetRng::new(0x2e1ec7 ^ seed);
                let a = random_assignment(&mut rng);
                let r = 1 + rng.below(5) as u32;
                let w = 1 + rng.below(5) as u32;
                let spec = QuorumSpec::new(r, w);
                let total = a.total();
                match spec.validate(&a) {
                    Ok(()) => {
                        assert!(r + w > total && r <= total && w <= total, "seed {seed}")
                    }
                    Err(QuorumError::NoIntersection { .. }) => {
                        assert!(r + w <= total, "seed {seed}")
                    }
                    Err(QuorumError::OutOfRange { .. }) => {
                        assert!(r == 0 || w == 0 || r > total || w > total, "seed {seed}")
                    }
                }
            }
        }

        /// Cheapest quorum always returns a genuine quorum, and never
        /// one that a strictly cheaper prefix could replace.
        #[test]
        fn cheapest_quorum_is_a_quorum() {
            for seed in 0..256u64 {
                let mut rng = DetRng::new(0xc057 ^ seed);
                let a = random_assignment(&mut rng);
                let costs: Vec<f64> = (0..7).map(|_| 1.0 + 99.0 * rng.f64()).collect();
                let total = a.total();
                let needed = 1 + total / 2;
                let cost = |s: SiteId| costs[s.index() % costs.len()];
                if let Some(q) = cheapest_quorum(&a, needed, &a.strong_sites(), cost) {
                    assert!(a.votes_in(&q) >= needed, "seed {seed}");
                    // Minimality: no member is redundant.
                    for drop in &q {
                        let rest: Vec<SiteId> = q.iter().copied().filter(|s| s != drop).collect();
                        assert!(a.votes_in(&rest) < needed, "seed {seed}");
                    }
                }
            }
        }

        #[test]
        fn presorted_matches_cheapest_quorum() {
            // The plan-cache fast path must agree with the sorting path on
            // every candidate subset, for every threshold.
            for seed in 0..256u64 {
                let mut rng = DetRng::new(0x9e50 ^ seed);
                let a = random_assignment(&mut rng);
                let costs: Vec<f64> = (0..7).map(|_| 1.0 + 99.0 * rng.f64()).collect();
                let cost = |s: SiteId| costs[s.index() % costs.len()];
                // A random candidate subset, then its cost-sorted order.
                let candidates: Vec<SiteId> = a
                    .all_sites()
                    .into_iter()
                    .filter(|_| rng.chance(0.8))
                    .collect();
                let mut sorted = candidates.clone();
                sorted.sort_by(|a, b| {
                    cost(*a)
                        .partial_cmp(&cost(*b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                });
                for needed in 1..=a.total() {
                    assert_eq!(
                        cheapest_quorum(&a, needed, &candidates, cost),
                        cheapest_quorum_presorted(&a, needed, &sorted),
                        "seed {seed}, needed {needed}"
                    );
                }
            }
        }
    }
}
